//! Table 6: the cost of 3-way replication for TPC-C (6 machines x 8
//! threads) — throughput and per-transaction-type latency, plus the
//! per-commit-phase latency quantiles scraped from the metrics registry.
//!
//! Paper shape: at most 41 % throughput overhead before the NIC
//! saturates; latencies grow by the extra log-write round trips.

use drtm_bench::{fmt_tps, run_cfg, tpcc_cfg, Scale};
use drtm_core::scrape_cluster;
use drtm_obs::Snapshot;
use drtm_workloads::driver::{build_tpcc, run_tpcc_on, EngineKind};

fn main() {
    let scale = Scale::from_env();
    let nodes = scale.pick(6, 3);
    let threads = scale.pick(8, 2);
    let cfg = tpcc_cfg(scale, nodes, threads);

    let plain_run = run_cfg(scale, EngineKind::DrtmR, threads, 1);
    let (plain_cluster, plain_calvin) = build_tpcc(&cfg, &plain_run);
    let plain = run_tpcc_on(&cfg, &plain_run, &plain_cluster, plain_calvin.as_ref());
    let plain_snap = scrape_cluster(&plain_cluster);

    let repl_run = run_cfg(scale, EngineKind::DrtmR, threads, 3.min(nodes));
    let (repl_cluster, repl_calvin) = build_tpcc(&cfg, &repl_run);
    let repl = run_tpcc_on(&cfg, &repl_run, &repl_cluster, repl_calvin.as_ref());
    let repl_snap = scrape_cluster(&repl_cluster);

    println!(
        "# Table 6: impact of 3-way replication (TPC-C, {nodes} machines x {threads} threads)"
    );
    println!(
        "throughput (new-order): {} -> {}   overhead {:.1}%",
        fmt_tps(plain.tps_of("new-order")),
        fmt_tps(repl.tps_of("new-order")),
        100.0 * (1.0 - repl.tps_of("new-order") / plain.tps_of("new-order").max(1e-9)),
    );
    println!(
        "throughput (standard mix): {} -> {}   overhead {:.1}%",
        fmt_tps(plain.throughput),
        fmt_tps(repl.throughput),
        100.0 * (1.0 - repl.throughput / plain.throughput.max(1e-9)),
    );
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "txn type", "mean us", "mean us (x3)", "p50 us (x3)", "p99 us (x3)"
    );
    for name in [
        "new-order",
        "payment",
        "delivery",
        "order-status",
        "stock-level",
    ] {
        let a = plain.per_type.get(name);
        let b = repl.per_type.get(name);
        println!(
            "{:<14} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            name,
            a.map_or(0.0, |t| t.mean_us),
            b.map_or(0.0, |t| t.mean_us),
            b.map_or(0.0, |t| t.p50_us),
            b.map_or(0.0, |t| t.p99_us),
        );
    }

    print_phase_table(&plain_snap, &repl_snap);
}

/// The commit-phase quantiles behind the latency growth: replication
/// adds the R.1 log and R.2 makeup steps, visible as nonzero rows in
/// the x3 columns only.
fn print_phase_table(plain: &Snapshot, repl: &Snapshot) {
    println!();
    println!("# commit-phase latency (committed txns, from the metrics registry)");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12}",
        "phase", "p50 us", "p99 us", "p50 us (x3)", "p99 us (x3)"
    );
    for (phase, a) in &plain.phases {
        let b = repl.phases.iter().find(|(p, _)| p == phase).map(|(_, h)| h);
        println!(
            "{:<10} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            phase,
            a.p50 as f64 / 1e3,
            a.p99 as f64 / 1e3,
            b.map_or(0.0, |h| h.p50 as f64 / 1e3),
            b.map_or(0.0, |h| h.p99 as f64 / 1e3),
        );
    }
}
