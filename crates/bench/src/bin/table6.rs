//! Table 6: the cost of 3-way replication for TPC-C (6 machines x 8
//! threads) — throughput and per-transaction-type latency.
//!
//! Paper shape: at most 41 % throughput overhead before the NIC
//! saturates; latencies grow by the extra log-write round trips.

use drtm_bench::{fmt_tps, run_cfg, tpcc_cfg, Scale};
use drtm_workloads::driver::{run_tpcc, EngineKind};

fn main() {
    let scale = Scale::from_env();
    let nodes = scale.pick(6, 3);
    let threads = scale.pick(8, 2);
    let cfg = tpcc_cfg(scale, nodes, threads);
    let plain = run_tpcc(&cfg, &run_cfg(scale, EngineKind::DrtmR, threads, 1));
    let repl = run_tpcc(
        &cfg,
        &run_cfg(scale, EngineKind::DrtmR, threads, 3.min(nodes)),
    );

    println!(
        "# Table 6: impact of 3-way replication (TPC-C, {nodes} machines x {threads} threads)"
    );
    println!(
        "throughput (new-order): {} -> {}   overhead {:.1}%",
        fmt_tps(plain.tps_of("new-order")),
        fmt_tps(repl.tps_of("new-order")),
        100.0 * (1.0 - repl.tps_of("new-order") / plain.tps_of("new-order").max(1e-9)),
    );
    println!(
        "throughput (standard mix): {} -> {}   overhead {:.1}%",
        fmt_tps(plain.throughput),
        fmt_tps(repl.throughput),
        100.0 * (1.0 - repl.throughput / plain.throughput.max(1e-9)),
    );
    println!(
        "{:<14} {:>14} {:>14} {:>14} {:>14}",
        "txn type", "mean us", "mean us (x3)", "p50 us (x3)", "p99 us (x3)"
    );
    for name in [
        "new-order",
        "payment",
        "delivery",
        "order-status",
        "stock-level",
    ] {
        let a = plain.per_type.get(name);
        let b = repl.per_type.get(name);
        println!(
            "{:<14} {:>14.1} {:>14.1} {:>14.1} {:>14.1}",
            name,
            a.map_or(0.0, |t| t.mean_us),
            b.map_or(0.0, |t| t.mean_us),
            b.map_or(0.0, |t| t.p50_us),
            b.map_or(0.0, |t| t.p99_us),
        );
    }
}
