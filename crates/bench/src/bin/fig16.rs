//! Figure 16: SmallBank throughput vs threads with 3-way replication.
//!
//! Paper shape: scales only to ~8 threads (6.4 M txns/sec), then the
//! single 56 Gbps NIC per machine is the bottleneck; more threads do not
//! help.

use drtm_bench::{fmt_tps, header, run_cfg, sb_cfg, Scale};
use drtm_workloads::driver::{run_smallbank, EngineKind};

fn main() {
    let scale = Scale::from_env();
    let nodes = scale.pick(6, 3);
    let threads: Vec<usize> = scale.pick(vec![1, 2, 4, 8, 12, 16], vec![1, 2, 4]);
    header(
        "Figure 16",
        "SmallBank throughput vs threads (DrTM+R=3, 3-way replication)",
        &["threads", "cross=1%", "cross=5%", "cross=10%"],
    );
    for &t in &threads {
        let mut row = format!("{t}");
        for cross in [0.01, 0.05, 0.10] {
            let cfg = sb_cfg(scale, nodes, cross);
            let m = run_smallbank(&cfg, &run_cfg(scale, EngineKind::DrtmR, t, 3));
            row += &format!("\t{}", fmt_tps(m.throughput));
        }
        println!("{row}");
    }
}
