//! Figure 11: TPC-C throughput vs worker threads on 6 machines.
//!
//! Paper shape: DrTM+R scales to 16 threads (2.56 M new-order, 9.21x
//! speedup, <1 % HTM abort rate thanks to metadata-only HTM regions);
//! DrTM *drops* past 8 threads — its whole-transaction HTM working sets
//! abort across sockets; DrTM+R=3 saturates the NIC earlier.

use drtm_bench::{fmt_tps, header, new_order_tps, run_cfg, tpcc_cfg, Scale};
use drtm_workloads::driver::{run_tpcc, EngineKind};

fn main() {
    let scale = Scale::from_env();
    let nodes = scale.pick(6, 2);
    let threads: Vec<usize> = scale.pick(vec![1, 2, 4, 8, 12, 16], vec![1, 2, 4]);
    header(
        "Figure 11",
        "TPC-C new-order throughput vs threads per machine",
        &["threads", "drtm+r", "drtm+r=3", "drtm"],
    );
    for &t in &threads {
        let cfg = tpcc_cfg(scale, nodes, t);
        let drtmr = run_tpcc(&cfg, &run_cfg(scale, EngineKind::DrtmR, t, 1));
        let drtmr3 = run_tpcc(&cfg, &run_cfg(scale, EngineKind::DrtmR, t, 3.min(nodes)));
        let drtm = run_tpcc(&cfg, &run_cfg(scale, EngineKind::Drtm, t, 1));
        println!(
            "{t}\t{}\t{}\t{}",
            fmt_tps(new_order_tps(&drtmr)),
            fmt_tps(new_order_tps(&drtmr3)),
            fmt_tps(new_order_tps(&drtm)),
        );
    }
}
