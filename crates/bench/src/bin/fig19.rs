//! Figure 19: TPC-C new-order throughput vs database size (warehouses
//! per machine; 6 machines x 8 threads).
//!
//! Paper shape: throughput is stable — even rising slightly past 48
//! warehouses (a larger database means more cache misses but less
//! contention).

use drtm_bench::{fmt_tps, header, new_order_tps, run_cfg, Scale};
use drtm_workloads::driver::{run_tpcc, EngineKind};
use drtm_workloads::tpcc::TpccCfg;

fn main() {
    let scale = Scale::from_env();
    let nodes = scale.pick(6, 2);
    let threads = scale.pick(8, 2);
    let wh_sweep: Vec<usize> = scale.pick(vec![8, 16, 32, 48, 64], vec![2, 4, 8]);
    header(
        "Figure 19",
        "TPC-C new-order throughput vs warehouses per machine",
        &["wh/machine", "drtm+r", "drtm+r=3"],
    );
    for &wh in &wh_sweep {
        let cfg = TpccCfg {
            nodes,
            warehouses_per_node: wh,
            customers: scale.pick(120, 32),
            items: scale.pick(2_000, 128),
            init_orders: scale.pick(10, 4),
            history_buckets: 1 << scale.pick(17, 13),
            ..Default::default()
        };
        let a = run_tpcc(&cfg, &run_cfg(scale, EngineKind::DrtmR, threads, 1));
        let b = run_tpcc(
            &cfg,
            &run_cfg(scale, EngineKind::DrtmR, threads, 3.min(nodes)),
        );
        println!(
            "{wh}\t{}\t{}",
            fmt_tps(new_order_tps(&a)),
            fmt_tps(new_order_tps(&b))
        );
    }
}
