//! Figure 18: high contention — one warehouse per machine, threads
//! sweep (6 machines).
//!
//! Paper shape: DrTM+R beats DrTM below ~10 threads per machine (DrTM
//! falls back to its locking slow path more often); with more threads,
//! DrTM+R's optimistic validation pays increasing read-write conflict
//! costs.

use drtm_bench::{fmt_tps, header, new_order_tps, run_cfg, Scale};
use drtm_workloads::driver::{run_tpcc, EngineKind};
use drtm_workloads::tpcc::TpccCfg;

fn main() {
    let scale = Scale::from_env();
    let nodes = scale.pick(6, 2);
    let threads: Vec<usize> = scale.pick(vec![1, 2, 4, 8, 10, 12, 16], vec![1, 2, 4]);
    header(
        "Figure 18",
        "TPC-C new-order throughput, ONE warehouse per machine (high contention)",
        &[
            "threads",
            "drtm+r",
            "drtm",
            "drtm+r aborts/commit",
            "drtm fallback%",
        ],
    );
    for &t in &threads {
        let cfg = TpccCfg {
            nodes,
            warehouses_per_node: 1, // All threads share one warehouse.
            customers: scale.pick(300, 48),
            items: scale.pick(10_000, 256),
            init_orders: scale.pick(20, 8),
            history_buckets: 1 << scale.pick(18, 13),
            ..Default::default()
        };
        let a = run_tpcc(&cfg, &run_cfg(scale, EngineKind::DrtmR, t, 1));
        let b = run_tpcc(&cfg, &run_cfg(scale, EngineKind::Drtm, t, 1));
        println!(
            "{t}\t{}\t{}\t{:.2}\t{:.1}%",
            fmt_tps(new_order_tps(&a)),
            fmt_tps(new_order_tps(&b)),
            a.aborted as f64 / a.committed.max(1) as f64,
            100.0 * b.fallbacks as f64 / (b.committed + b.fallbacks).max(1) as f64,
        );
    }
}
