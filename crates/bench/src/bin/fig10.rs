//! Figure 10: TPC-C new-order throughput vs number of machines
//! (8 threads each, one warehouse per thread).
//!
//! Paper shape: DrTM+R scales near-linearly to 1.49 M new-order txns/sec
//! on 6 machines; DrTM is 2.2–9.8 % faster (generality cost); DrTM+R=3
//! tracks DrTM+R with bounded overhead until the NIC saturates; Calvin
//! is more than an order of magnitude below everything.

use drtm_bench::{fmt_tps, header, new_order_tps, run_cfg, tpcc_cfg, Scale};
use drtm_workloads::driver::{run_tpcc, EngineKind, RunCfg};

fn main() {
    let scale = Scale::from_env();
    let threads = scale.pick(8, 2);
    let machines: Vec<usize> = scale.pick(vec![1, 2, 3, 4, 5, 6], vec![1, 2, 3]);
    header(
        "Figure 10",
        "TPC-C new-order throughput vs machines",
        &["machines", "drtm+r", "drtm+r=3", "drtm", "calvin"],
    );
    for &n in &machines {
        let cfg = tpcc_cfg(scale, n, threads);
        let r = |engine, replicas| -> RunCfg { run_cfg(scale, engine, threads, replicas) };
        let drtmr = run_tpcc(&cfg, &r(EngineKind::DrtmR, 1));
        let drtmr3 = if n >= 3 {
            new_order_tps(&run_tpcc(&cfg, &r(EngineKind::DrtmR, 3)))
        } else {
            f64::NAN
        };
        let drtm = run_tpcc(&cfg, &r(EngineKind::Drtm, 1));
        let calvin = run_tpcc(&cfg, &r(EngineKind::Calvin, 1));
        println!(
            "{n}\t{}\t{}\t{}\t{}",
            fmt_tps(new_order_tps(&drtmr)),
            if drtmr3.is_nan() {
                "-".into()
            } else {
                fmt_tps(drtmr3)
            },
            fmt_tps(new_order_tps(&drtm)),
            fmt_tps(new_order_tps(&calvin)),
        );
    }
}
