//! Commit-protocol time breakdown: where a transaction's virtual time
//! goes, per protocol step (C.1–C.6, R.1–R.2), for purely local vs.
//! heavily distributed TPC-C runs, with and without replication.
//!
//! Not a figure in the paper, but the protocol-level explanation behind
//! Figures 10/17/Table 6: distributed transactions are dominated by the
//! one-sided locking and validation round trips; replication adds the
//! log-write step.

use drtm_bench::{run_cfg, tpcc_cfg, Scale};
use drtm_core::txn::StepBreakdown;
use drtm_workloads::driver::{build_tpcc, EngineKind, RunCfg};
use drtm_workloads::engine::EngineWorker;
use drtm_workloads::tpcc::txns;

fn run_case(name: &str, cross: f64, replicas: usize) {
    let scale = Scale::from_env();
    let nodes = 3;
    let cfg = tpcc_cfg(scale, nodes, 1);
    let run = RunCfg {
        replicas,
        cross_override: Some(cross),
        ..run_cfg(scale, EngineKind::DrtmR, 1, replicas)
    };
    let (cluster, _) = build_tpcc(&cfg, &run);

    // One worker executing new-order transactions only (the breakdown is
    // per committed transaction, so a single thread suffices).
    let mut ew = EngineWorker::new(EngineKind::DrtmR, &cluster, None, 0, 7);
    let mut rng = drtm_base::SplitMix64::new(11);
    let n = 300;
    for i in 0..n {
        let inp = txns::gen_new_order(&cfg, &mut rng, 0, cross);
        let _ = ew.exec(false, |t| txns::new_order(t, &cfg, &inp, i));
    }
    // Aux work so the logs do not grow unbounded.
    for node in 0..nodes {
        cluster.truncate_step(node);
    }

    let (steps, committed) = match &ew {
        EngineWorker::DrtmR(w) => (w.stats.steps.clone(), w.stats.committed),
        _ => unreachable!(),
    };
    print_case(name, &steps, committed);
}

fn print_case(name: &str, s: &StepBreakdown, committed: u64) {
    let total = s.total().max(1) as f64;
    let pct = |x: u64| 100.0 * x as f64 / total;
    println!(
        "{name}: {:.1} us/txn over {committed} new-orders",
        total / committed.max(1) as f64 / 1e3
    );
    println!("  execute          {:6.1}%", pct(s.execute_ns));
    println!("  C.1 lock         {:6.1}%", pct(s.lock_ns));
    println!("  C.2 validate     {:6.1}%", pct(s.validate_remote_ns));
    println!("  C.3/C.4 HTM      {:6.1}%", pct(s.htm_ns));
    println!("  R.1 log          {:6.1}%", pct(s.log_ns));
    println!("  R.2 makeup       {:6.1}%", pct(s.makeup_ns));
    println!("  C.5 remote write {:6.1}%", pct(s.remote_write_ns));
    println!("  C.6 unlock       {:6.1}%", pct(s.unlock_ns));
}

fn main() {
    println!("# Commit-protocol virtual-time breakdown (TPC-C new-order, 3 machines)");
    run_case("local (1% cross, no replication)", 0.01, 1);
    run_case("distributed (100% cross, no replication)", 1.0, 1);
    run_case("local + 3-way replication", 0.01, 3);
    run_case("distributed + 3-way replication", 1.0, 3);
}
