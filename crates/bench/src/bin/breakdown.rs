//! Commit-protocol time breakdown: where a transaction's virtual time
//! goes, per protocol step (C.1–C.6, R.1–R.2), for purely local vs.
//! heavily distributed TPC-C runs, with and without replication.
//!
//! Not a figure in the paper, but the protocol-level explanation behind
//! Figures 10/17/Table 6: distributed transactions are dominated by the
//! one-sided locking and validation round trips; replication adds the
//! log-write step.
//!
//! The numbers come from the cluster's metrics registry (`drtm-obs`):
//! the engine records one histogram per commit phase, and this binary
//! just scrapes and formats them.

use drtm_bench::{run_cfg, tpcc_cfg, Scale};
use drtm_core::scrape_cluster;
use drtm_obs::Snapshot;
use drtm_workloads::driver::{build_tpcc, EngineKind, RunCfg};
use drtm_workloads::engine::EngineWorker;
use drtm_workloads::tpcc::txns;

/// Display label per registry phase name, in protocol order.
const PHASE_LABELS: [(&str, &str); 8] = [
    ("execute", "execute"),
    ("lock", "C.1 lock"),
    ("validate", "C.2 validate"),
    ("htm", "C.3/C.4 HTM"),
    ("log", "R.1 log"),
    ("makeup", "R.2 makeup"),
    ("update", "C.5 remote write"),
    ("unlock", "C.6 unlock"),
];

fn run_case(name: &str, cross: f64, replicas: usize) {
    let scale = Scale::from_env();
    let nodes = 3;
    let cfg = tpcc_cfg(scale, nodes, 1);
    let run = RunCfg {
        replicas,
        cross_override: Some(cross),
        ..run_cfg(scale, EngineKind::DrtmR, 1, replicas)
    };
    let (cluster, _) = build_tpcc(&cfg, &run);

    // One worker executing new-order transactions only (the breakdown is
    // per committed transaction, so a single thread suffices).
    let mut ew = EngineWorker::new(EngineKind::DrtmR, &cluster, None, 0, 7);
    let mut rng = drtm_base::SplitMix64::new(11);
    let n = 300;
    for i in 0..n {
        let inp = txns::gen_new_order(&cfg, &mut rng, 0, cross);
        let _ = drtm_base::task::block_now(
            ew.exec(false, async |t| txns::new_order(t, &cfg, &inp, i).await),
        );
    }
    // Aux work so the logs do not grow unbounded.
    for node in 0..nodes {
        cluster.truncate_step(node);
    }

    print_case(name, &scrape_cluster(&cluster));
}

fn print_case(name: &str, snap: &Snapshot) {
    let sum_of = |phase: &str| {
        snap.phases
            .iter()
            .find(|(p, _)| *p == phase)
            .map_or(0, |(_, h)| h.sum)
    };
    let total: u64 = PHASE_LABELS.iter().map(|(p, _)| sum_of(p)).sum();
    let total = total.max(1) as f64;
    println!(
        "{name}: {:.1} us/txn over {} new-orders",
        total / snap.committed.max(1) as f64 / 1e3,
        snap.committed
    );
    for (phase, label) in PHASE_LABELS {
        println!(
            "  {label:<16} {:6.1}%",
            100.0 * sum_of(phase) as f64 / total
        );
    }
}

fn main() {
    println!("# Commit-protocol virtual-time breakdown (TPC-C new-order, 3 machines)");
    run_case("local (1% cross, no replication)", 0.01, 1);
    run_case("distributed (100% cross, no replication)", 1.0, 1);
    run_case("local + 3-way replication", 0.01, 3);
    run_case("distributed + 3-way replication", 1.0, 3);
}
