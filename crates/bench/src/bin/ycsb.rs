//! YCSB A/B/C/F on DrTM+R: throughput vs machines per mix.
//!
//! Not a paper figure — a neutral-ground harness downstream users expect
//! from a transactional KV store.

use drtm_bench::{fmt_tps, header, Scale};
use drtm_workloads::driver::{run_ycsb, EngineKind, RunCfg};
use drtm_workloads::ycsb::{YcsbCfg, YcsbMix};

fn main() {
    let scale = Scale::from_env();
    let threads = scale.pick(8, 2);
    let machines: Vec<usize> = scale.pick(vec![1, 2, 4, 6], vec![1, 2, 3]);
    header(
        "YCSB",
        "throughput vs machines (zipfian 0.99, 5% cross-machine)",
        &[
            "machines",
            "A (50r/50u)",
            "B (95r/5u)",
            "C (100r)",
            "F (rmw)",
        ],
    );
    for &n in &machines {
        let mut row = format!("{n}");
        for mix in [YcsbMix::A, YcsbMix::B, YcsbMix::C, YcsbMix::F] {
            let cfg = YcsbCfg {
                nodes: n,
                records: scale.pick(100_000, 2_000),
                mix,
                ..Default::default()
            };
            let run = RunCfg {
                engine: EngineKind::DrtmR,
                threads,
                txns_per_worker: scale.pick(400, 150),
                ..Default::default()
            };
            let m = run_ycsb(&cfg, &run);
            row += &format!("\t{}", fmt_tps(m.throughput));
        }
        println!("{row}");
    }
}
