//! Figure 15: SmallBank throughput vs machines with 3-way replication.
//!
//! Paper shape: scales with machines but at a much lower level than
//! Figure 13 — every transaction pays at least four extra RDMA WRITEs
//! for replication, so the NIC dominates these tiny transactions.

use drtm_bench::{fmt_tps, header, run_cfg, sb_cfg, Scale};
use drtm_workloads::driver::{run_smallbank, EngineKind};

fn main() {
    let scale = Scale::from_env();
    let threads = scale.pick(16, 2);
    let machines: Vec<usize> = scale.pick(vec![3, 4, 5, 6], vec![3, 4]);
    header(
        "Figure 15",
        "SmallBank throughput vs machines (DrTM+R=3, 3-way replication)",
        &["machines", "cross=1%", "cross=5%", "cross=10%"],
    );
    for &n in &machines {
        let mut row = format!("{n}");
        for cross in [0.01, 0.05, 0.10] {
            let cfg = sb_cfg(scale, n, cross);
            let m = run_smallbank(&cfg, &run_cfg(scale, EngineKind::DrtmR, threads, 3));
            row += &format!("\t{}", fmt_tps(m.throughput));
        }
        println!("{row}");
    }
}
