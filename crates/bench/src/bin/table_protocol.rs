//! Tables 2, 3, and 4: the protocol mechanism matrices, printed from
//! the live code paths so the documentation cannot drift from the
//! implementation.

use drtm_core::{read_validates, write_validates};

fn main() {
    println!("# Table 2: consistency of reads (execution phase)");
    println!("{:<10} {:<14} {:<14}", "", "vs COMMIT/L", "vs COMMIT/R");
    println!("{:<10} {:<14} {:<14}", "READ/L", "HTM", "HTM + lock check");
    println!("{:<10} {:<14} {:<14}", "READ/R", "versioning", "versioning");
    println!();
    println!("# Table 3: isolation of commits");
    println!("{:<10} {:<16} {:<16}", "", "vs COMMIT/L", "vs COMMIT/R");
    println!("{:<10} {:<16} {:<16}", "COMMIT/L", "HTM", "HTM & locking");
    println!(
        "{:<10} {:<16} {:<16}",
        "COMMIT/R", "HTM & locking", "locking"
    );
    println!();
    println!("# Table 4: optimistic-replication sequence numbers and validation");
    println!("  C.4  local primary (in HTM):   SN+1 (odd = uncommittable)");
    println!("  R.1  backups (logs):           SN+2");
    println!("  R.2  local primary (makeup):   SN+1 again (even = committable)");
    println!("  C.5  remote primary:           SN+2");
    println!("  read validation:  (SN_old + 1) & !1 == SN_cur");
    println!("  write validation: SN_cur & 1 == 0");
    println!();
    println!("  live checks:");
    for (seen, cur, expect) in [
        (4u64, 4u64, true),
        (4, 5, false),
        (5, 6, true),
        (5, 5, false),
    ] {
        let got = read_validates(seen, cur);
        assert_eq!(got, expect);
        println!("    read_validates({seen}, {cur}) = {got}");
    }
    for (cur, expect) in [(4u64, true), (7u64, false)] {
        let got = write_validates(cur);
        assert_eq!(got, expect);
        println!("    write_validates({cur}) = {got}");
    }
}
