//! Figures 13: SmallBank throughput vs machines (no replication), for
//! 1 %, 5 %, and 10 % probability of cross-machine SP/AMG accesses.
//!
//! Paper shape: at 1 % distributed transactions throughput scales ~5x
//! from 1 to 6 machines (94 M txns/sec at 6x16); higher distribution
//! ratios lower the curve but keep it growing from 2 machines.

use drtm_bench::{fmt_tps, header, run_cfg, sb_cfg, Scale};
use drtm_workloads::driver::{run_smallbank, EngineKind};

fn main() {
    let scale = Scale::from_env();
    let threads = scale.pick(16, 2);
    let machines: Vec<usize> = scale.pick(vec![1, 2, 3, 4, 5, 6], vec![1, 2, 3]);
    header(
        "Figure 13",
        "SmallBank throughput vs machines (DrTM+R, no replication)",
        &["machines", "cross=1%", "cross=5%", "cross=10%"],
    );
    for &n in &machines {
        let mut row = format!("{n}");
        for cross in [0.01, 0.05, 0.10] {
            let cfg = sb_cfg(scale, n, cross);
            let m = run_smallbank(&cfg, &run_cfg(scale, EngineKind::DrtmR, threads, 1));
            row += &format!("\t{}", fmt_tps(m.throughput));
        }
        println!("{row}");
    }
}
