//! Figure 12: scale-out emulation with logical nodes (4 workers each).
//!
//! The paper runs up to 4 logical nodes per physical machine (24 logical
//! nodes total); logical nodes interact through the full RDMA-based OCC
//! protocol even when co-located, and co-located nodes share the
//! machine's NIC. Here NIC sharing is modelled by dividing the per-node
//! link bandwidth by the co-location factor.
//!
//! Paper shape: near-linear scaling to 24 logical nodes (2.89 M
//! new-order transactions per second).

use drtm_bench::{fmt_tps, header, new_order_tps, tpcc_cfg, Scale};
use drtm_workloads::driver::{run_tpcc_on, EngineKind, RunCfg};
use drtm_workloads::tpcc;

fn main() {
    let scale = Scale::from_env();
    let workers = 4;
    let logical: Vec<usize> = scale.pick(vec![4, 8, 12, 16, 20, 24], vec![2, 4, 6]);
    let per_machine = 4usize;
    header(
        "Figure 12",
        "TPC-C new-order throughput vs logical nodes (4 workers each)",
        &["logical-nodes", "drtm+r"],
    );
    for &n in &logical {
        let cfg = tpcc_cfg(scale, n, workers);
        let co = n.min(per_machine);
        let mut run = RunCfg {
            engine: EngineKind::DrtmR,
            threads: workers,
            replicas: 1,
            txns_per_worker: scale.pick(300, 100),
            ..Default::default()
        };
        run.seed = 7;
        // Build with NIC bandwidth divided by the co-location factor.
        let expected = run.txns_per_worker * run.threads * 2;
        let mut opts = drtm_core::cluster::EngineOpts::builder()
            .region_size(cfg.region_size(expected))
            .build();
        opts.cost.nic_bytes_per_sec /= co as f64;
        let cluster = drtm_core::cluster::DrtmCluster::new(cfg.nodes, &cfg.schema(), opts);
        tpcc::load(&cluster, &cfg);
        let m = run_tpcc_on(&cfg, &run, &cluster, None);
        println!("{n}\t{}", fmt_tps(new_order_tps(&m)));
    }
}
