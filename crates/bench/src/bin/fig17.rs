//! Figure 17: TPC-C new-order throughput vs cross-warehouse access
//! probability (6 machines x 8 threads).
//!
//! Paper shape: 100 % cross-warehouse accesses cost DrTM+R 73-82 % of
//! its throughput; 5 % costs only ~11 %; the DrTM/DrTM+R gap narrows as
//! distribution grows (both update remote records the same way).

use drtm_bench::{fmt_tps, header, new_order_tps, run_cfg, tpcc_cfg, Scale};
use drtm_workloads::driver::{run_tpcc, EngineKind, RunCfg};

fn main() {
    let scale = Scale::from_env();
    let nodes = scale.pick(6, 2);
    let threads = scale.pick(8, 2);
    let sweep: Vec<f64> = scale.pick(
        vec![0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 1.00],
        vec![0.01, 0.10, 0.50, 1.00],
    );
    header(
        "Figure 17",
        "TPC-C new-order throughput vs cross-warehouse access probability",
        &["cross%", "drtm+r", "drtm+r=3", "drtm"],
    );
    let cfg = tpcc_cfg(scale, nodes, threads);
    for &cross in &sweep {
        let with = |engine, replicas| -> RunCfg {
            RunCfg {
                cross_override: Some(cross),
                ..run_cfg(scale, engine, threads, replicas)
            }
        };
        let a = run_tpcc(&cfg, &with(EngineKind::DrtmR, 1));
        let b = run_tpcc(&cfg, &with(EngineKind::DrtmR, 3.min(nodes)));
        let c = run_tpcc(&cfg, &with(EngineKind::Drtm, 1));
        println!(
            "{:.0}\t{}\t{}\t{}",
            cross * 100.0,
            fmt_tps(new_order_tps(&a)),
            fmt_tps(new_order_tps(&b)),
            fmt_tps(new_order_tps(&c)),
        );
    }
}
