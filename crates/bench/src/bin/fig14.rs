//! Figure 14: SmallBank throughput vs threads (6 machines, no
//! replication), for 1 %, 5 %, 10 % cross-machine probability.
//!
//! Paper shape: 9.2x speedup to 16 threads at 1 % distribution.

use drtm_bench::{fmt_tps, header, run_cfg, sb_cfg, Scale};
use drtm_workloads::driver::{run_smallbank, EngineKind};

fn main() {
    let scale = Scale::from_env();
    let nodes = scale.pick(6, 2);
    let threads: Vec<usize> = scale.pick(vec![1, 2, 4, 8, 12, 16], vec![1, 2, 4]);
    header(
        "Figure 14",
        "SmallBank throughput vs threads (DrTM+R, no replication)",
        &["threads", "cross=1%", "cross=5%", "cross=10%"],
    );
    for &t in &threads {
        let mut row = format!("{t}");
        for cross in [0.01, 0.05, 0.10] {
            let cfg = sb_cfg(scale, nodes, cross);
            let m = run_smallbank(&cfg, &run_cfg(scale, EngineKind::DrtmR, t, 1));
            row += &format!("\t{}", fmt_tps(m.throughput));
        }
        println!("{row}");
    }
}
