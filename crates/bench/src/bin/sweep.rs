//! Free-form parameter sweep: run any (engine, workload, nodes, threads,
//! replicas, cross-probability) grid point from the command line.
//!
//! ```text
//! sweep [tpcc|smallbank] [--engine drtm+r|drtm|calvin|silo]
//!       [--nodes N] [--threads T] [--replicas R] [--cross P]
//!       [--txns N] [--full] [--msg-locking] [--no-cache] [--fuse]
//!       [--legacy-verbs] [--no-value-cache] [--raw]
//! ```
//!
//! Prints one tab-separated result row (plus a header), so shell loops
//! can build arbitrary grids beyond the paper's figures. With `--raw`
//! only the aggregate throughput (txn/s, bare float) is printed — the
//! machine-comparable form the CI observability-overhead check diffs
//! between obs-enabled and obs-disabled builds, and the batched-verbs
//! A/B check diffs between `--legacy-verbs` (or `DRTM_VERB_PATH=
//! blocking`) and the batched default.

use drtm_bench::{fmt_tps, sb_cfg, tpcc_cfg, Scale};
use drtm_workloads::driver::{run_smallbank, run_tpcc, EngineKind, RunCfg};

fn parse_engine(s: &str) -> EngineKind {
    match s {
        "drtm+r" | "drtmr" => EngineKind::DrtmR,
        "drtm" => EngineKind::Drtm,
        "calvin" => EngineKind::Calvin,
        "silo" => EngineKind::Silo,
        other => {
            eprintln!("unknown engine {other:?} (drtm+r|drtm|calvin|silo)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = "tpcc".to_string();
    let mut engine = EngineKind::DrtmR;
    let mut nodes = 2usize;
    let mut threads = 2usize;
    let mut replicas = 1usize;
    let mut cross: Option<f64> = None;
    let mut txns = 150usize;
    let mut msg_locking = false;
    let mut no_cache = false;
    let mut fuse = false;
    let mut legacy_verbs = false;
    let mut no_value_cache = false;
    let mut raw = false;

    let mut it = args.iter().peekable();
    let grab = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("missing argument value");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "tpcc" | "smallbank" => workload = a.clone(),
            "--engine" => engine = parse_engine(&grab(&mut it)),
            "--nodes" => nodes = grab(&mut it).parse().expect("--nodes N"),
            "--threads" => threads = grab(&mut it).parse().expect("--threads T"),
            "--replicas" => replicas = grab(&mut it).parse().expect("--replicas R"),
            "--cross" => cross = Some(grab(&mut it).parse().expect("--cross P")),
            "--txns" => txns = grab(&mut it).parse().expect("--txns N"),
            "--msg-locking" => msg_locking = true,
            "--no-cache" => no_cache = true,
            "--fuse" => fuse = true,
            "--legacy-verbs" => legacy_verbs = true,
            "--no-value-cache" => no_value_cache = true,
            "--raw" => raw = true,
            "--full" => {} // Handled by Scale::from_env.
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let scale = Scale::from_env();
    let run = RunCfg {
        engine,
        threads,
        replicas,
        txns_per_worker: txns,
        cross_override: if workload == "tpcc" { cross } else { None },
        msg_locking,
        no_location_cache: no_cache,
        fuse_lock_validate: fuse,
        ..Default::default()
    };
    // `..Default::default()` already honours `DRTM_VERB_PATH=blocking` and
    // `DRTM_VALUE_CACHE=off`; the flags are the explicit spellings for
    // scripts and CI matrices.
    let run = RunCfg {
        batched_verbs: run.batched_verbs && !legacy_verbs,
        no_value_cache: run.no_value_cache || no_value_cache,
        ..run
    };

    if !raw {
        println!("workload\tengine\tnodes\tthreads\treplicas\tcross\tthroughput\tnew-order\taborts\tfallbacks");
    }
    let (m, no) = if workload == "tpcc" {
        let cfg = tpcc_cfg(scale, nodes, threads);
        let m = run_tpcc(&cfg, &run);
        let no = m.tps_of("new-order");
        (m, no)
    } else {
        let cfg = sb_cfg(scale, nodes, cross.unwrap_or(0.01));
        let m = run_smallbank(&cfg, &run);
        (m, 0.0)
    };
    if raw {
        println!("{:.0}", m.throughput);
        return;
    }
    println!(
        "{workload}\t{engine:?}\t{nodes}\t{threads}\t{replicas}\t{}\t{}\t{}\t{}\t{}",
        cross.map_or("-".into(), |c| format!("{c}")),
        fmt_tps(m.throughput),
        if no > 0.0 { fmt_tps(no) } else { "-".into() },
        m.aborted,
        m.fallbacks,
    );
}
