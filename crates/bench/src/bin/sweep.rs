//! Free-form parameter sweep: run any (engine, workload, nodes, threads,
//! replicas, cross-probability) grid point from the command line.
//!
//! ```text
//! sweep [tpcc|smallbank|ycsb] [--engine drtm+r|drtm|calvin|silo]
//!       [--nodes N] [--threads T] [--replicas R] [--cross P]
//!       [--txns N] [--routines R] [--full] [--msg-locking] [--no-cache]
//!       [--fuse] [--legacy-verbs] [--no-value-cache] [--raw]
//!       [--json FILE]
//! ```
//!
//! Prints one tab-separated result row (plus a header), so shell loops
//! can build arbitrary grids beyond the paper's figures. With `--raw`
//! only the aggregate throughput (txn/s, bare float) is printed — the
//! machine-comparable form the CI observability-overhead check diffs
//! between obs-enabled and obs-disabled builds, the batched-verbs A/B
//! check diffs between `--legacy-verbs` (or `DRTM_VERB_PATH=blocking`)
//! and the batched default, and the pipeline A/B diffs between
//! `--routines 1` and `--routines 8`. With `--json FILE` a one-object
//! summary (`workload`, `rev`, `routines`, `throughput`, `abort_rate`,
//! `p50`, `p99`, `nic_bytes_per_txn`, `pipeline`) is also written to
//! `FILE` for artifact upload; `rev` comes from `DRTM_GIT_REV` or
//! `git rev-parse --short HEAD`, so summaries from different PRs are
//! directly comparable.

use drtm_bench::{fmt_tps, sb_cfg, stamp, tpcc_cfg, ycsb_cfg, Scale};
use drtm_workloads::driver::{
    build_smallbank, build_tpcc, build_ycsb, run_smallbank_on, run_tpcc_on, run_ycsb_on,
    EngineKind, Measurement, RunCfg,
};

fn parse_engine(s: &str) -> EngineKind {
    match s {
        "drtm+r" | "drtmr" => EngineKind::DrtmR,
        "drtm" => EngineKind::Drtm,
        "calvin" => EngineKind::Calvin,
        "silo" => EngineKind::Silo,
        other => {
            eprintln!("unknown engine {other:?} (drtm+r|drtm|calvin|silo)");
            std::process::exit(2);
        }
    }
}

/// Serializes the run summary as one JSON object. Latencies are the
/// commit-count-weighted overall quantiles across the mix's transaction
/// types, in virtual microseconds; `nic_bytes_per_txn` divides every
/// NIC's wire bytes by committed transactions. The `rev` (kept for
/// artifact compatibility), shared `stamp` (git rev + UTC + full
/// `RunCfg`), and `pipeline` fields make the artifact self-describing
/// across PRs.
fn json_summary(
    workload: &str,
    m: &Measurement,
    nic_bytes: u64,
    run: &RunCfg,
    pipeline: &drtm_obs::PipelineStats,
    contention: &drtm_obs::ContentionStats,
) -> String {
    let attempts = (m.committed + m.aborted).max(1);
    let abort_rate = m.aborted as f64 / attempts as f64;
    let (mut p50, mut p99, mut n) = (0.0f64, 0.0f64, 0u64);
    for t in m.per_type.values() {
        p50 += t.p50_us * t.count as f64;
        p99 += t.p99_us * t.count as f64;
        n += t.count;
    }
    let c = n.max(1) as f64;
    format!(
        concat!(
            "{{\"workload\":\"{}\",\"rev\":\"{}\",\"routines\":{},",
            "\"stamp\":{},",
            "\"throughput\":{:.1},\"abort_rate\":{:.4},",
            "\"p50\":{:.2},\"p99\":{:.2},\"nic_bytes_per_txn\":{:.1},",
            "\"pipeline\":{{\"routines\":{},\"wait_ns\":{},\"overlap_ns\":{},",
            "\"hiding_ratio\":{:.4}}},",
            "\"contention\":{{\"policy\":\"{}\",\"pessimistic\":{},",
            "\"parks\":{},\"grants\":{}}}}}\n"
        ),
        workload,
        stamp::git_rev(),
        run.routines,
        stamp::stamp_json(Some(run)),
        m.throughput,
        abort_rate,
        p50 / c,
        p99 / c,
        nic_bytes as f64 / m.committed.max(1) as f64,
        pipeline.routines,
        pipeline.wait_ns,
        pipeline.overlap_ns,
        pipeline.hiding_ratio(),
        run.contention.label(),
        contention.pessimistic,
        contention.parks,
        contention.grants,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workload = "tpcc".to_string();
    let mut engine = EngineKind::DrtmR;
    let mut nodes = 2usize;
    let mut threads = 2usize;
    let mut replicas = 1usize;
    let mut cross: Option<f64> = None;
    let mut txns = 150usize;
    let mut routines = 1usize;
    let mut mix: Option<String> = None;
    let mut theta: Option<f64> = None;
    let mut records: Option<usize> = None;
    let mut msg_locking = false;
    let mut no_cache = false;
    let mut fuse = false;
    let mut legacy_verbs = false;
    let mut no_value_cache = false;
    let mut raw = false;
    let mut json: Option<String> = None;

    let mut it = args.iter().peekable();
    let grab = |it: &mut std::iter::Peekable<std::slice::Iter<String>>| -> String {
        it.next().cloned().unwrap_or_else(|| {
            eprintln!("missing argument value");
            std::process::exit(2);
        })
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "tpcc" | "smallbank" | "ycsb" => workload = a.clone(),
            "--engine" => engine = parse_engine(&grab(&mut it)),
            "--nodes" => nodes = grab(&mut it).parse().expect("--nodes N"),
            "--threads" => threads = grab(&mut it).parse().expect("--threads T"),
            "--replicas" => replicas = grab(&mut it).parse().expect("--replicas R"),
            "--cross" => cross = Some(grab(&mut it).parse().expect("--cross P")),
            "--txns" => txns = grab(&mut it).parse().expect("--txns N"),
            "--routines" => routines = grab(&mut it).parse().expect("--routines R"),
            "--mix" => mix = Some(grab(&mut it)),
            "--theta" => theta = Some(grab(&mut it).parse().expect("--theta T")),
            "--records" => records = Some(grab(&mut it).parse().expect("--records N")),
            "--msg-locking" => msg_locking = true,
            "--no-cache" => no_cache = true,
            "--fuse" => fuse = true,
            "--legacy-verbs" => legacy_verbs = true,
            "--no-value-cache" => no_value_cache = true,
            "--raw" => raw = true,
            "--json" => json = Some(grab(&mut it)),
            "--full" => {} // Handled by Scale::from_env.
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
    }

    let scale = Scale::from_env();
    let run = RunCfg {
        engine,
        threads,
        replicas,
        txns_per_worker: txns,
        cross_override: if workload == "tpcc" { cross } else { None },
        msg_locking,
        no_location_cache: no_cache,
        fuse_lock_validate: fuse,
        routines,
        ..Default::default()
    };
    // `..Default::default()` already honours `DRTM_VERB_PATH=blocking` and
    // `DRTM_VALUE_CACHE=off`; the flags are the explicit spellings for
    // scripts and CI matrices.
    let run = RunCfg {
        batched_verbs: run.batched_verbs && !legacy_verbs,
        no_value_cache: run.no_value_cache || no_value_cache,
        ..run
    };

    if !raw {
        println!("workload\tengine\tnodes\tthreads\treplicas\tcross\tthroughput\tnew-order\taborts\tfallbacks");
    }
    let (m, no, cluster) = match workload.as_str() {
        "tpcc" => {
            let cfg = tpcc_cfg(scale, nodes, threads);
            let (cluster, calvin) = build_tpcc(&cfg, &run);
            let m = run_tpcc_on(&cfg, &run, &cluster, calvin.as_ref());
            let no = m.tps_of("new-order");
            (m, no, cluster)
        }
        "smallbank" => {
            let cfg = sb_cfg(scale, nodes, cross.unwrap_or(0.01));
            let (cluster, calvin) = build_smallbank(&cfg, &run);
            let m = run_smallbank_on(&cfg, &run, &cluster, calvin.as_ref());
            (m, 0.0, cluster)
        }
        _ => {
            // YCSB-only shape knobs (`--mix`, `--theta`, `--records`),
            // so contention A/Bs can request the 99%-zipfian hot head
            // without a bespoke binary.
            let mut cfg = ycsb_cfg(scale, nodes, cross.unwrap_or(0.05));
            if let Some(m) = &mix {
                cfg.mix = match m.to_ascii_uppercase().as_str() {
                    "A" => drtm_workloads::ycsb::YcsbMix::A,
                    "B" => drtm_workloads::ycsb::YcsbMix::B,
                    "C" => drtm_workloads::ycsb::YcsbMix::C,
                    "F" => drtm_workloads::ycsb::YcsbMix::F,
                    other => {
                        eprintln!("unknown mix {other:?} (one of A, B, C, F)");
                        std::process::exit(2);
                    }
                };
            }
            if let Some(t) = theta {
                cfg.theta = t;
            }
            if let Some(r) = records {
                cfg.records = r;
            }
            let (cluster, calvin) = build_ycsb(&cfg, &run);
            let m = run_ycsb_on(&cfg, &run, &cluster, calvin.as_ref());
            (m, 0.0, cluster)
        }
    };
    if let Some(path) = &json {
        let snap = drtm_core::scrape_cluster(&cluster);
        let nic_bytes: u64 = snap.nic_bytes.iter().map(|&(_, b)| b).sum();
        std::fs::write(
            path,
            json_summary(
                &workload,
                &m,
                nic_bytes,
                &run,
                &snap.pipeline,
                &snap.contention,
            ),
        )
        .unwrap_or_else(|e| panic!("writing {path}: {e}"));
    }
    if raw {
        println!("{:.0}", m.throughput);
        return;
    }
    println!(
        "{workload}\t{engine:?}\t{nodes}\t{threads}\t{replicas}\t{}\t{}\t{}\t{}\t{}",
        cross.map_or("-".into(), |c| format!("{c}")),
        fmt_tps(m.throughput),
        if no > 0.0 { fmt_tps(no) } else { "-".into() },
        m.aborted,
        m.fallbacks,
    );
}
