//! Ablations for the design decisions DESIGN.md calls out:
//!
//! * the DrTM location cache (remote lookups become multi-READ probes
//!   without it);
//! * the IBV_ATOMIC_GLOB fused lock+validate CAS (§4.4 C.2), which
//!   saves one RDMA READ per remote read-set record;
//! * the §6.4 pointer-swap local-record update (HTM write-set footprint
//!   and commit cost).

use drtm_bench::{fmt_tps, new_order_tps, run_cfg, tpcc_cfg, Scale};
use drtm_core::cluster::{DrtmCluster, EngineOpts};
use drtm_workloads::driver::{run_tpcc, run_tpcc_on, EngineKind, RunCfg};
use drtm_workloads::tpcc;

fn main() {
    let scale = Scale::from_env();
    let nodes = scale.pick(4, 2);
    let threads = scale.pick(4, 2);
    let cfg = tpcc_cfg(scale, nodes, threads);
    // Make remote traffic matter for the cache/fusion ablations.
    let base = RunCfg {
        cross_override: Some(0.5),
        ..run_cfg(scale, EngineKind::DrtmR, threads, 1)
    };

    println!("# Ablations (TPC-C, {nodes} machines x {threads} threads, 50% cross-warehouse)");
    let on = run_tpcc(&cfg, &base);
    println!("baseline:                 {}", fmt_tps(new_order_tps(&on)));

    let no_cache = run_tpcc(
        &cfg,
        &RunCfg {
            no_location_cache: true,
            ..base.clone()
        },
    );
    println!(
        "without location cache:   {}",
        fmt_tps(new_order_tps(&no_cache))
    );

    let fused = run_tpcc(
        &cfg,
        &RunCfg {
            fuse_lock_validate: true,
            ..base.clone()
        },
    );
    println!(
        "GLOB fused lock+validate: {}",
        fmt_tps(new_order_tps(&fused))
    );

    // FaRM-style messaging for locking: message round trips replace
    // one-sided CAS, and the lock-service interrupts abort the host's
    // HTM regions (the paper's argument for one-sided verbs, §4.4).
    let msg = run_tpcc(
        &cfg,
        &RunCfg {
            msg_locking: true,
            ..base.clone()
        },
    );
    println!("messaging-based locking:  {}", fmt_tps(new_order_tps(&msg)));

    // Pointer-swap: custom cluster with the optimisation disabled.
    let expected = base.txns_per_worker * base.threads * 2;
    let opts = EngineOpts::builder()
        .region_size(cfg.region_size(expected))
        .pointer_swap(false)
        .build();
    let cluster = DrtmCluster::new(cfg.nodes, &cfg.schema(), opts);
    tpcc::load(&cluster, &cfg);
    let no_swap = run_tpcc_on(&cfg, &base, &cluster, None);
    println!(
        "without pointer-swap:     {}",
        fmt_tps(new_order_tps(&no_swap))
    );
}
