//! Artifact stamping: one shared helper every JSON artifact uses.
//!
//! Every machine-readable artifact the repo emits — `sweep --json`
//! summaries, `BENCH_loadcurve.json`, chrome://tracing exports — must
//! be self-describing across PRs and machines: which revision produced
//! it, when, and under what run configuration. This module is the one
//! place that stamp is built, so the fields never drift between
//! artifact kinds.

use drtm_workloads::driver::RunCfg;

/// The git revision being benchmarked: `DRTM_GIT_REV` if CI exported
/// it, else `git rev-parse --short HEAD`, else `"unknown"`. Stamped
/// into every artifact so `BENCH_*.json` files from different PRs stay
/// comparable.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("DRTM_GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".into())
}

/// Current wall-clock time as an RFC 3339 UTC timestamp
/// (`YYYY-MM-DDTHH:MM:SSZ`), derived from the Unix epoch with the
/// civil-calendar algorithm — no chrono dependency.
pub fn utc_rfc3339() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let (days, rem) = (secs / 86_400, secs % 86_400);
    let (h, m, s) = (rem / 3_600, rem % 3_600 / 60, rem % 60);
    let (y, mo, d) = civil_from_days(days as i64);
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}Z")
}

/// Days-since-1970-01-01 → (year, month, day), proleptic Gregorian
/// (Howard Hinnant's `civil_from_days`).
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let mo = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if mo <= 2 { y + 1 } else { y }, mo, d)
}

/// Serializes a [`RunCfg`] as one JSON object, every field spelled
/// out so an artifact records the exact knob settings that produced
/// it.
pub fn run_cfg_json(run: &RunCfg) -> String {
    format!(
        concat!(
            "{{\"engine\":\"{:?}\",\"threads\":{},\"replicas\":{},",
            "\"txns_per_worker\":{},\"seed\":{},\"cross_override\":{},",
            "\"fuse_lock_validate\":{},\"no_location_cache\":{},",
            "\"msg_locking\":{},\"batched_verbs\":{},\"no_value_cache\":{},",
            "\"routines\":{},\"contention\":\"{}\",\"route\":\"{}\"}}"
        ),
        run.engine,
        run.threads,
        run.replicas,
        run.txns_per_worker,
        run.seed,
        run.cross_override.map_or("null".into(), |c| format!("{c}")),
        run.fuse_lock_validate,
        run.no_location_cache,
        run.msg_locking,
        run.batched_verbs,
        run.no_value_cache,
        run.routines,
        run.contention.label(),
        run.route.label(),
    )
}

/// The artifact stamp: one JSON object with the git revision, the UTC
/// wall-clock timestamp, and (when the artifact came from a driver
/// run) the full [`RunCfg`]. Splice it into an artifact as a
/// `"stamp"` / `"meta"` member.
pub fn stamp_json(run: Option<&RunCfg>) -> String {
    format!(
        "{{\"git_rev\":\"{}\",\"utc\":\"{}\",\"run_cfg\":{}}}",
        git_rev(),
        utc_rfc3339(),
        run.map_or("null".into(), run_cfg_json),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_epoch_and_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year
        assert_eq!(civil_from_days(19_782), (2024, 2, 29));
        assert_eq!(civil_from_days(19_783), (2024, 3, 1));
        assert_eq!(civil_from_days(-1), (1969, 12, 31));
    }

    #[test]
    fn timestamp_shape_is_rfc3339() {
        let ts = utc_rfc3339();
        assert_eq!(ts.len(), 20, "{ts}");
        assert_eq!(&ts[4..5], "-");
        assert_eq!(&ts[10..11], "T");
        assert!(ts.ends_with('Z'));
    }

    #[test]
    fn stamp_is_valid_json_with_and_without_cfg() {
        let bare = stamp_json(None);
        drtm_obs::jsonlint::validate(&bare).expect("bare stamp parses");
        assert!(bare.contains("\"run_cfg\":null"));
        let run = RunCfg::default();
        let full = stamp_json(Some(&run));
        drtm_obs::jsonlint::validate(&full).expect("full stamp parses");
        assert!(full.contains("\"git_rev\":\""));
        assert!(full.contains("\"routines\":"));
        assert!(full.contains("\"batched_verbs\":"));
        assert!(full.contains("\"contention\":\"off\""));
        assert!(full.contains("\"route\":\"off\""));
    }
}
