//! Shared infrastructure for the experiment harnesses.
//!
//! One binary per table/figure of the paper's evaluation regenerates the
//! corresponding rows/series (see DESIGN.md's experiment index and
//! EXPERIMENTS.md for recorded paper-vs-measured results). Binaries run
//! a **quick** profile by default — smaller datasets and fewer threads so
//! the whole suite finishes on a small host — and the paper-scale
//! profile with `--full` (or `DRTM_FULL=1`).
//!
//! Throughput numbers are in *virtual time* (see `drtm-base::clock`):
//! absolute values depend on the calibrated cost model, but the shapes —
//! who wins, by what factor, where curves flatten — are the reproduction
//! targets.

use drtm_workloads::driver::{EngineKind, Measurement, RunCfg};
use drtm_workloads::smallbank::SbCfg;
use drtm_workloads::tpcc::TpccCfg;
use drtm_workloads::ycsb::{YcsbCfg, YcsbMix};

pub mod stamp;

pub use stamp::{git_rev, stamp_json, utc_rfc3339};

/// Experiment scale profile.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Paper-scale (true) or quick (false).
    pub full: bool,
}

impl Scale {
    /// Reads the profile from argv (`--full`) or `DRTM_FULL=1`.
    pub fn from_env() -> Self {
        let full = std::env::args().any(|a| a == "--full")
            || std::env::var("DRTM_FULL").is_ok_and(|v| v == "1");
        Self { full }
    }

    /// Picks `full` or `quick`.
    pub fn pick<T>(&self, full: T, quick: T) -> T {
        if self.full {
            full
        } else {
            quick
        }
    }
}

/// The TPC-C configuration used by the figure harnesses.
///
/// Paper setting: each worker thread hosts one warehouse with 10
/// districts (so `warehouses_per_node = threads`).
pub fn tpcc_cfg(scale: Scale, nodes: usize, threads: usize) -> TpccCfg {
    TpccCfg {
        nodes,
        warehouses_per_node: threads.max(1),
        customers: scale.pick(300, 48),
        items: scale.pick(10_000, 256),
        init_orders: scale.pick(20, 8),
        history_buckets: 1 << scale.pick(18, 13),
        ..Default::default()
    }
}

/// The SmallBank configuration used by the figure harnesses.
pub fn sb_cfg(scale: Scale, nodes: usize, cross_prob: f64) -> SbCfg {
    SbCfg {
        nodes,
        accounts: scale.pick(100_000, 2_000),
        cross_prob,
        ..Default::default()
    }
}

/// The YCSB configuration used by the figure harnesses: the B mix
/// (95% reads) with mild skew — the routine-pipelining A/B's workload,
/// where cross-node READs dominate and verb latency is there to hide.
pub fn ycsb_cfg(scale: Scale, nodes: usize, cross_prob: f64) -> YcsbCfg {
    YcsbCfg {
        nodes,
        records: scale.pick(100_000, 4_000),
        theta: 0.6,
        cross_prob,
        mix: YcsbMix::B,
        ..Default::default()
    }
}

/// A run configuration for the figure harnesses.
pub fn run_cfg(scale: Scale, engine: EngineKind, threads: usize, replicas: usize) -> RunCfg {
    RunCfg {
        engine,
        threads,
        replicas,
        txns_per_worker: scale.pick(400, 120),
        ..Default::default()
    }
}

/// Prints a figure/table header.
pub fn header(id: &str, what: &str, cols: &[&str]) {
    println!("# {id}: {what}");
    println!("# quick profile unless --full; throughput in virtual txns/sec");
    println!("{}", cols.join("\t"));
}

/// Formats a throughput in K/M units.
pub fn fmt_tps(tps: f64) -> String {
    if tps >= 1e6 {
        format!("{:.2}M", tps / 1e6)
    } else if tps >= 1e3 {
        format!("{:.1}K", tps / 1e3)
    } else {
        format!("{tps:.0}")
    }
}

/// Convenience: new-order throughput of a TPC-C measurement.
pub fn new_order_tps(m: &Measurement) -> f64 {
    m.tps_of("new-order")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_pick() {
        assert_eq!(Scale { full: true }.pick(1, 2), 1);
        assert_eq!(Scale { full: false }.pick(1, 2), 2);
    }

    #[test]
    fn fmt_units() {
        assert_eq!(fmt_tps(1_500_000.0), "1.50M");
        assert_eq!(fmt_tps(2_500.0), "2.5K");
        assert_eq!(fmt_tps(42.0), "42");
    }

    #[test]
    fn cfgs_are_consistent() {
        let s = Scale { full: false };
        let t = tpcc_cfg(s, 2, 3);
        assert_eq!(t.nodes, 2);
        assert_eq!(t.warehouses_per_node, 3);
        let b = sb_cfg(s, 4, 0.05);
        assert_eq!(b.nodes, 4);
        assert!((b.cross_prob - 0.05).abs() < 1e-12);
    }
}
