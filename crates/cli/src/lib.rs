//! The `drtm-shell` command interpreter.
//!
//! An interactive (or scripted) shell over a DrTM+R cluster: create a
//! cluster, read and write keys transactionally, transfer between
//! accounts, kill and recover machines, and inspect statistics. The
//! interpreter is a plain state machine over parsed commands, kept in a
//! library so it can be unit-tested without a terminal.

use std::sync::Arc;

use drtm_core::cluster::{DrtmCluster, EngineOpts};
use drtm_core::recovery::{full_restart_scrub, recover_node};
use drtm_core::txn::{TxnError, Worker};
use drtm_rdma::NicSnapshot;
use drtm_store::TableSpec;

/// The generic key-value table every shell cluster carries.
pub const TABLE: u32 = 0;
/// Value size of the shell's table (a single `u64` plus padding).
pub const VALUE_LEN: usize = 16;

/// A parsed shell command.
#[derive(Debug, Clone, PartialEq)]
pub enum Cmd {
    /// `cluster <nodes> [replicas]`
    Cluster { nodes: usize, replicas: usize },
    /// `put <shard> <key> <value>`
    Put { shard: usize, key: u64, value: u64 },
    /// `get <shard> <key>`
    Get { shard: usize, key: u64 },
    /// `del <shard> <key>`
    Del { shard: usize, key: u64 },
    /// `transfer <shard> <key> <shard> <key> <amount>`
    Transfer {
        from: (usize, u64),
        to: (usize, u64),
        amount: u64,
    },
    /// `crash <node>`
    Crash { node: usize },
    /// `recover <node>`
    Recover { node: usize },
    /// `scrub` (full-restart repair)
    Scrub,
    /// `chaos <seed> <node> <point> [hit]` — standalone fault-injection
    /// run: SmallBank under a plan that kills `node` at crash point
    /// `point`, recovered through lease expiry, then audited.
    Chaos {
        seed: u64,
        node: usize,
        point: &'static str,
        hit: u64,
    },
    /// `smallbank [txns]` — load and run a small SmallBank benchmark
    /// on a fresh 2-machine cluster so the metrics registry has real
    /// per-phase and abort data to report.
    Smallbank {
        /// Transactions attempted per worker thread.
        txns: usize,
    },
    /// `breakdown [txns]` — run the default SmallBank benchmark twice,
    /// once over the legacy blocking verb path and once over the
    /// doorbell-batched work-queue path, and report per-phase virtual
    /// time, the combined C.1+C.2+C.5+C.6 fan-out share, and the
    /// achieved verbs-per-doorbell batching factor.
    Breakdown {
        /// Transactions attempted per worker thread on each side.
        txns: usize,
    },
    /// `cache [txns]` — run a read-heavy cross-machine YCSB-B twice,
    /// once with the read-mostly value cache disabled and once enabled,
    /// and report remote NIC bytes per committed transaction, READ
    /// verbs per committed transaction, and the achieved hit rate.
    Cache {
        /// Transactions attempted per worker thread on each side.
        txns: usize,
    },
    /// `pipeline [txns]` — run a read-heavy cross-machine YCSB-B twice,
    /// once with one blocking routine per worker and once with 8
    /// pipelined routines, and report virtual-time throughput, abort
    /// rate, and the scheduler's latency-hiding ratio.
    Pipeline {
        /// Transactions attempted per worker slot on each side.
        txns: usize,
    },
    /// `contend [txns]` — run a 99%-zipfian write-heavy YCSB-A and a
    /// hot-account SmallBank twice each, once with contention
    /// management `off` (rung-1 backoff only) and once with the full
    /// `escalate` ladder, and report committed virtual-time throughput,
    /// abort rate, and the escalation counters (DESIGN.md §15).
    Contend {
        /// Transactions attempted per worker slot on each side.
        txns: usize,
    },
    /// `serve [requests]` — boot the TCP serving front-end on loopback
    /// and A/B the same zero-sum SmallBank request count offered twice:
    /// paced under capacity and as one all-at-once burst far past the
    /// admission high-water mark. Reports goodput, admitted p50/p99
    /// wall latency, shed rate, and the conservation audit.
    Serve {
        /// Requests offered per side.
        requests: usize,
    },
    /// `route [requests] [json FILE]` — A/B the shard-affinity
    /// admission router (DESIGN.md §16) on loopback: the same
    /// single-home-heavy zero-sum SmallBank burst offered once through
    /// the shared admission queue and once through per-pool routed
    /// queues with bounded work stealing. Reports committed txns per
    /// *virtual* second per side (locality shows up as commit-path
    /// verbs avoided), local/remote dispatch, steals, and the
    /// conservation audit; `json FILE` also writes the stamped A/B
    /// artifact.
    Route {
        /// Requests offered per side.
        requests: usize,
        /// Optional artifact path.
        out: Option<String>,
    },
    /// `loadcurve [rates r1,r2,...] [requests N] [json FILE]` — sweep
    /// an offered-rate grid against one loopback serving front-end:
    /// per rate, an open-loop client run plus a live `StatsRequest`
    /// scrape of the running server, reporting goodput, rejects, and
    /// coordinated-omission-safe p50/p99/p999. With `json FILE` the
    /// stamped latency-vs-load artifact (`BENCH_loadcurve.json`) is
    /// written too.
    LoadCurve {
        /// Offered rates (req/s), swept in ascending order.
        rates: Vec<f64>,
        /// Requests per grid point.
        requests: usize,
        /// Optional artifact path.
        out: Option<String>,
    },
    /// `stats [prom|json]`
    Stats {
        /// Output format.
        format: StatsFormat,
    },
    /// `trace <file>` — export the trace rings as chrome://tracing JSON
    Trace {
        /// Destination path.
        path: String,
    },
    /// `help`
    Help,
    /// `quit`
    Quit,
}

/// Output format of the `stats` command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Human-readable tables (the default).
    Text,
    /// Prometheus text exposition.
    Prom,
    /// JSON.
    Json,
}

/// Resolves a crash-point name to its canonical `&'static str`
/// ([`drtm_chaos::CrashSpec`] stores static names, not owned strings).
fn crash_point_name(s: &str) -> Result<&'static str, String> {
    drtm_chaos::CRASH_POINTS
        .iter()
        .find(|(p, _)| *p == s)
        .map(|(p, _)| *p)
        .ok_or_else(|| {
            let names: Vec<&str> = drtm_chaos::CRASH_POINTS.iter().map(|(p, _)| *p).collect();
            format!("unknown crash point {s:?} (one of {})", names.join(", "))
        })
}

/// Parses one shell line into a command.
pub fn parse(line: &str) -> Result<Option<Cmd>, String> {
    let words: Vec<&str> = line.split_whitespace().collect();
    let num = |w: &str| -> Result<u64, String> {
        w.parse::<u64>().map_err(|_| format!("not a number: {w:?}"))
    };
    let cmd = match words.as_slice() {
        [] | ["#", ..] => return Ok(None),
        ["cluster", n] => Cmd::Cluster {
            nodes: num(n)? as usize,
            replicas: 1,
        },
        ["cluster", n, r] => Cmd::Cluster {
            nodes: num(n)? as usize,
            replicas: num(r)? as usize,
        },
        ["put", s, k, v] => Cmd::Put {
            shard: num(s)? as usize,
            key: num(k)?,
            value: num(v)?,
        },
        ["get", s, k] => Cmd::Get {
            shard: num(s)? as usize,
            key: num(k)?,
        },
        ["del", s, k] => Cmd::Del {
            shard: num(s)? as usize,
            key: num(k)?,
        },
        ["transfer", s1, k1, s2, k2, amt] => Cmd::Transfer {
            from: (num(s1)? as usize, num(k1)?),
            to: (num(s2)? as usize, num(k2)?),
            amount: num(amt)?,
        },
        ["crash", n] => Cmd::Crash {
            node: num(n)? as usize,
        },
        ["recover", n] => Cmd::Recover {
            node: num(n)? as usize,
        },
        ["scrub"] => Cmd::Scrub,
        ["chaos", seed, node, point] => Cmd::Chaos {
            seed: num(seed)?,
            node: num(node)? as usize,
            point: crash_point_name(point)?,
            hit: 3,
        },
        ["chaos", seed, node, point, hit] => Cmd::Chaos {
            seed: num(seed)?,
            node: num(node)? as usize,
            point: crash_point_name(point)?,
            hit: num(hit)?,
        },
        ["smallbank"] => Cmd::Smallbank { txns: 200 },
        ["smallbank", n] => Cmd::Smallbank {
            txns: num(n)? as usize,
        },
        ["breakdown"] => Cmd::Breakdown { txns: 200 },
        ["breakdown", n] => Cmd::Breakdown {
            txns: num(n)? as usize,
        },
        ["cache"] => Cmd::Cache { txns: 200 },
        ["cache", n] => Cmd::Cache {
            txns: num(n)? as usize,
        },
        // A larger default than the other A/Bs: hot-key interleaving
        // is noisy run-to-run, and the gain only stabilizes with
        // enough conflicted commits per side.
        ["contend"] => Cmd::Contend { txns: 1_000 },
        ["contend", n] => Cmd::Contend {
            txns: num(n)? as usize,
        },
        ["pipeline"] => Cmd::Pipeline { txns: 200 },
        ["pipeline", n] => Cmd::Pipeline {
            txns: num(n)? as usize,
        },
        ["serve"] => Cmd::Serve { requests: 400 },
        ["serve", n] => Cmd::Serve {
            requests: num(n)? as usize,
        },
        ["route"] => Cmd::Route {
            requests: 600,
            out: None,
        },
        ["route", "json", f] => Cmd::Route {
            requests: 600,
            out: Some((*f).to_string()),
        },
        ["route", n] => Cmd::Route {
            requests: num(n)? as usize,
            out: None,
        },
        ["route", n, "json", f] => Cmd::Route {
            requests: num(n)? as usize,
            out: Some((*f).to_string()),
        },
        ["loadcurve", rest @ ..] => {
            let mut rates = vec![200.0, 500.0, 1_000.0];
            let mut requests = 200usize;
            let mut out = None;
            let mut it = rest.iter();
            while let Some(key) = it.next() {
                let v = it
                    .next()
                    .ok_or_else(|| format!("loadcurve: {key} needs a value"))?;
                match *key {
                    "rates" => {
                        rates = v
                            .split(',')
                            .map(|r| {
                                r.parse::<f64>()
                                    .ok()
                                    .filter(|r| *r > 0.0)
                                    .ok_or_else(|| format!("bad rate: {r:?}"))
                            })
                            .collect::<Result<_, _>>()?;
                        if rates.is_empty() {
                            return Err("loadcurve: empty rate list".into());
                        }
                    }
                    "requests" => requests = num(v)? as usize,
                    "json" => out = Some((*v).to_string()),
                    other => {
                        return Err(format!(
                            "loadcurve: unknown key {other:?} (rates|requests|json)"
                        ))
                    }
                }
            }
            Cmd::LoadCurve {
                rates,
                requests,
                out,
            }
        }
        ["stats"] => Cmd::Stats {
            format: StatsFormat::Text,
        },
        ["stats", "prom"] => Cmd::Stats {
            format: StatsFormat::Prom,
        },
        ["stats", "json"] => Cmd::Stats {
            format: StatsFormat::Json,
        },
        ["trace", path] => Cmd::Trace {
            path: (*path).to_string(),
        },
        ["help"] => Cmd::Help,
        ["quit"] | ["exit"] => Cmd::Quit,
        other => return Err(format!("unknown command: {other:?} (try `help`)")),
    };
    Ok(Some(cmd))
}

/// The interpreter state: a cluster plus one worker per machine.
#[derive(Default)]
pub struct Shell {
    cluster: Option<Arc<DrtmCluster>>,
    workers: Vec<Worker>,
    /// NIC counters at the previous `stats`, so the next one can show
    /// the delta as well as the running totals.
    last_nic: Vec<NicSnapshot>,
}

/// The help text.
pub const HELP: &str = "\
commands:
  cluster <nodes> [replicas]   create a cluster (one KV table)
  put <shard> <key> <value>    transactional insert-or-update
  get <shard> <key>            transactional read-only lookup
  del <shard> <key>            transactional delete
  transfer <s1> <k1> <s2> <k2> <amt>
                               distributed transfer between two keys
  crash <node>                 fail-stop a machine
  recover <node>               reconfigure + replay its redo logs
  scrub                        full-restart repair (locks, odd records)
  chaos <seed> <node> <point> [hit]
                               standalone chaos run: SmallBank while
                               <node> is killed at crash point <point>
                               (C.1-C.6, R.1-R.3) on its [hit]-th
                               passage; recovery via lease expiry; the
                               conservation audit is printed
  smallbank [txns]             run SmallBank on a fresh 2-machine
                               cluster (fills the metrics registry)
  breakdown [txns]             A/B the doorbell-batched verb path
                               against the legacy blocking path on the
                               default SmallBank run: per-phase virtual
                               time, the C.1+C.2+C.5+C.6 fan-out
                               share, and verbs per doorbell
  cache [txns]                 A/B the read-mostly value cache on a
                               read-heavy cross-machine YCSB-B run:
                               NIC bytes and READ verbs per committed
                               transaction, cache hit rate (DESIGN.md
                               section 8)
  pipeline [txns]              A/B the routine scheduler on a
                               read-heavy cross-machine YCSB-B run:
                               1 blocking routine vs 8 pipelined
                               routines per worker, virtual-time
                               throughput, abort rate, and the
                               latency-hiding ratio (DESIGN.md
                               section 11)
  contend [txns]               A/B the contention-management ladder
                               on a 99%-zipfian write-heavy YCSB-A
                               and a hot-account SmallBank: policy
                               `off` vs `escalate`, committed
                               virtual-time throughput, abort rate,
                               and the escalation counters (DESIGN.md
                               section 15)
  serve [requests]             A/B the TCP serving front-end on
                               loopback: the same zero-sum SmallBank
                               load offered paced under capacity and
                               as one burst far past the admission
                               high-water mark — goodput, admitted
                               p50/p99, shed rate, and the
                               conservation audit (DESIGN.md
                               section 12)
  route [requests] [json FILE] A/B the shard-affinity admission
                               router on loopback: the same
                               single-home-heavy zero-sum SmallBank
                               burst through one shared queue vs
                               per-pool routed queues with bounded
                               work stealing — committed txns per
                               virtual second, local/remote dispatch,
                               steals, and the conservation audit;
                               `json FILE` also writes the stamped
                               A/B artifact (DESIGN.md section 16)
  loadcurve [rates r1,r2,...] [requests N] [json FILE]
                               sweep an offered-rate grid against one
                               loopback serving front-end: per rate, an
                               open-loop client run + a live stats
                               scrape of the running server — goodput,
                               rejects, coordinated-omission-safe
                               p50/p99/p999; `json FILE` also writes
                               the stamped latency-vs-load artifact
  stats [prom|json]            commit-phase latencies, abort taxonomy,
                               HTM abort classes, NIC counters, and
                               per-machine liveness (default: text)
  trace <file>                 export trace rings as chrome://tracing
                               JSON (open in a chromium browser or
                               https://ui.perfetto.dev)
  help | quit";

/// The SmallBank configuration behind `smallbank` and `breakdown`:
/// small and hot on purpose — a couple of machines, a tiny account set,
/// and plenty of cross-machine transactions, so the abort taxonomy and
/// every commit phase light up.
fn shell_smallbank_cfg() -> drtm_workloads::smallbank::SbCfg {
    drtm_workloads::smallbank::SbCfg {
        nodes: 2,
        accounts: 20,
        hot_fraction: 0.2,
        hot_prob: 0.95,
        cross_prob: 0.4,
    }
}

/// One measured side of the `breakdown` verb-path A/B: the shell's
/// default SmallBank benchmark run entirely over one verb path.
#[derive(Debug, Clone)]
pub struct VerbPathSide {
    /// `true` for the doorbell-batched work-queue path, `false` for the
    /// legacy per-record blocking path.
    pub batched: bool,
    /// Committed transactions over the whole run.
    pub committed: u64,
    /// Per-phase virtual-time sums, `(registry phase name, ns)`.
    pub phase_ns: Vec<(&'static str, u64)>,
    /// Verbs issued across all NICs (reads + writes + atomics + sends).
    pub verbs: u64,
    /// Doorbells rung (each flushes a batch of one or more WRs).
    pub doorbells: u64,
}

impl VerbPathSide {
    /// Virtual-time sum of one phase, 0 if it never recorded.
    pub fn phase(&self, name: &str) -> u64 {
        self.phase_ns
            .iter()
            .find(|(p, _)| *p == name)
            .map_or(0, |(_, ns)| *ns)
    }

    /// Combined commit fan-out time: C.1 lock + C.2 validate + C.5
    /// update + C.6 unlock — the four phases the doorbell batching
    /// targets (C.2 joined when header validation moved onto the
    /// posted work queue alongside the value cache).
    pub fn fanout_ns(&self) -> u64 {
        self.phase("lock") + self.phase("validate") + self.phase("update") + self.phase("unlock")
    }

    /// Total virtual time across all phases.
    pub fn total_ns(&self) -> u64 {
        self.phase_ns.iter().map(|(_, ns)| ns).sum()
    }

    /// Share of total virtual time spent in commit fan-out.
    pub fn fanout_share(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            0.0
        } else {
            self.fanout_ns() as f64 / total as f64
        }
    }

    /// Achieved batching factor: verbs flushed per doorbell rung.
    pub fn verbs_per_doorbell(&self) -> f64 {
        if self.doorbells == 0 {
            0.0
        } else {
            self.verbs as f64 / self.doorbells as f64
        }
    }
}

/// Runs the shell's default SmallBank on a fresh cluster over the
/// requested verb path and scrapes the phase/NIC numbers.
fn measure_verb_path(txns: usize, batched: bool) -> VerbPathSide {
    use drtm_workloads::driver::{build_smallbank, run_smallbank_on, RunCfg};
    let cfg = shell_smallbank_cfg();
    let run = RunCfg {
        threads: 3,
        txns_per_worker: txns.max(1),
        batched_verbs: batched,
        ..Default::default()
    };
    let (cluster, calvin) = build_smallbank(&cfg, &run);
    let m = run_smallbank_on(&cfg, &run, &cluster, calvin.as_ref());
    let snap = drtm_core::scrape_cluster(&cluster);
    VerbPathSide {
        batched,
        committed: m.committed,
        phase_ns: snap.phases.iter().map(|(p, h)| (*p, h.sum)).collect(),
        verbs: snap
            .nic
            .iter()
            .filter(|r| r.verb != "doorbell")
            .map(|r| r.count)
            .sum(),
        doorbells: snap
            .nic
            .iter()
            .filter(|r| r.verb == "doorbell")
            .map(|r| r.count)
            .sum(),
    }
}

/// The `breakdown` command's result: both verb paths measured on the
/// same workload, ready to render or assert on.
#[derive(Debug, Clone)]
pub struct BreakdownReport {
    /// The legacy blocking-verb side.
    pub blocking: VerbPathSide,
    /// The doorbell-batched side.
    pub batched: VerbPathSide,
}

impl BreakdownReport {
    /// Relative reduction of the C.1+C.2+C.5+C.6 fan-out share going
    /// from the blocking path to the batched path (0.25 = 25% lower
    /// share).
    pub fn reduction(&self) -> f64 {
        let b = self.blocking.fanout_share();
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.batched.fanout_share() / b
        }
    }

    /// Renders the human-readable A/B table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "verb-path A/B on the default SmallBank sweep \
             ({} committed blocking, {} committed batched):\n",
            self.blocking.committed, self.batched.committed
        );
        out += &format!(
            "  {:<10} {:>14} {:>14}\n",
            "phase", "blocking us", "batched us"
        );
        for (name, _) in &self.blocking.phase_ns {
            out += &format!(
                "  {:<10} {:>14.1} {:>14.1}\n",
                name,
                self.blocking.phase(name) as f64 / 1_000.0,
                self.batched.phase(name) as f64 / 1_000.0,
            );
        }
        out += &format!(
            "  C.1+C.2+C.5+C.6 fan-out share: blocking {:.1}% -> batched {:.1}% \
             ({:.1}% reduction)\n",
            self.blocking.fanout_share() * 100.0,
            self.batched.fanout_share() * 100.0,
            self.reduction() * 100.0,
        );
        out += &format!(
            "  verbs per doorbell: blocking {:.2} -> batched {:.2}",
            self.blocking.verbs_per_doorbell(),
            self.batched.verbs_per_doorbell(),
        );
        out
    }
}

/// Measures the default SmallBank benchmark over both verb paths
/// (blocking first, then batched) on fresh clusters.
pub fn smallbank_breakdown(txns: usize) -> BreakdownReport {
    BreakdownReport {
        blocking: measure_verb_path(txns, false),
        batched: measure_verb_path(txns, true),
    }
}

/// One measured side of the `cache` value-cache A/B: the shell's
/// read-heavy YCSB benchmark run with the cache disabled or enabled.
#[derive(Debug, Clone)]
pub struct CacheSide {
    /// `true` when the read-mostly value cache was enabled.
    pub cached: bool,
    /// Committed transactions over the whole run.
    pub committed: u64,
    /// NIC bytes moved across all ports (payload + header model).
    pub nic_bytes: u64,
    /// READ verbs completed across all ports.
    pub reads: u64,
    /// Cache hits (0 on the disabled side).
    pub hits: u64,
    /// Cache misses (0 on the disabled side).
    pub misses: u64,
    /// Cache invalidations (0 on the disabled side).
    pub invalidations: u64,
    /// Wire bytes the hits avoided.
    pub bytes_saved: u64,
}

impl CacheSide {
    /// NIC bytes per committed transaction.
    pub fn bytes_per_txn(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.nic_bytes as f64 / self.committed as f64
        }
    }

    /// READ verbs per committed transaction.
    pub fn reads_per_txn(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            self.reads as f64 / self.committed as f64
        }
    }

    /// Cache hit fraction in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let lookups = self.hits + self.misses;
        if lookups == 0 {
            0.0
        } else {
            self.hits as f64 / lookups as f64
        }
    }
}

/// The shared YCSB configuration behind the `cache` A/B: read-heavy
/// (mix B) and aggressively cross-machine, so most reads are remote and
/// the value cache has traffic worth absorbing, over a key space small
/// enough that the same records recur.
fn shell_ycsb_cfg() -> drtm_workloads::ycsb::YcsbCfg {
    drtm_workloads::ycsb::YcsbCfg {
        nodes: 2,
        records: 256,
        cross_prob: 0.6,
        mix: drtm_workloads::ycsb::YcsbMix::B,
        ..Default::default()
    }
}

/// Runs the shell's read-heavy YCSB on a fresh cluster with the value
/// cache on or off and scrapes the NIC and cache counters.
fn measure_value_cache(txns: usize, cached: bool) -> CacheSide {
    use drtm_workloads::driver::{build_ycsb, run_ycsb_on, RunCfg};
    let cfg = shell_ycsb_cfg();
    let run = RunCfg {
        threads: 3,
        txns_per_worker: txns.max(1),
        no_value_cache: !cached,
        ..Default::default()
    };
    let (cluster, calvin) = build_ycsb(&cfg, &run);
    let m = run_ycsb_on(&cfg, &run, &cluster, calvin.as_ref());
    let snap = drtm_core::scrape_cluster(&cluster);
    CacheSide {
        cached,
        committed: m.committed,
        nic_bytes: snap.nic_bytes.iter().map(|(_, b)| b).sum(),
        reads: snap
            .nic
            .iter()
            .filter(|r| r.verb == "read")
            .map(|r| r.count)
            .sum(),
        hits: snap.cache.hits,
        misses: snap.cache.misses,
        invalidations: snap.cache.invalidations,
        bytes_saved: snap.cache.bytes_saved,
    }
}

/// The `cache` command's result: the same read-heavy YCSB measured
/// with the value cache off and on, ready to render or assert on.
#[derive(Debug, Clone)]
pub struct CacheReport {
    /// The cache-disabled side.
    pub off: CacheSide,
    /// The cache-enabled side.
    pub on: CacheSide,
}

impl CacheReport {
    /// Relative reduction of NIC bytes per committed transaction going
    /// from cache-off to cache-on (0.25 = 25% fewer bytes per txn).
    pub fn byte_reduction(&self) -> f64 {
        let off = self.off.bytes_per_txn();
        if off == 0.0 {
            0.0
        } else {
            1.0 - self.on.bytes_per_txn() / off
        }
    }

    /// Renders the human-readable A/B table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "value-cache A/B on read-heavy YCSB-B, 60% cross-machine \
             ({} committed off, {} committed on):\n",
            self.off.committed, self.on.committed
        );
        out += &format!(
            "  {:<16} {:>12} {:>12}\n  {:<16} {:>12.1} {:>12.1}\n  {:<16} {:>12.2} {:>12.2}\n",
            "",
            "cache off",
            "cache on",
            "NIC bytes/txn",
            self.off.bytes_per_txn(),
            self.on.bytes_per_txn(),
            "READ verbs/txn",
            self.off.reads_per_txn(),
            self.on.reads_per_txn(),
        );
        out += &format!(
            "  cache on: {} hits, {} misses ({:.1}% hit rate), {} invalidated, {:.1} KB saved\n",
            self.on.hits,
            self.on.misses,
            self.on.hit_rate() * 100.0,
            self.on.invalidations,
            self.on.bytes_saved as f64 / 1024.0,
        );
        out += &format!(
            "  NIC bytes per committed txn: {:.1} -> {:.1} ({:.1}% reduction)",
            self.off.bytes_per_txn(),
            self.on.bytes_per_txn(),
            self.byte_reduction() * 100.0,
        );
        out
    }
}

/// Measures the read-heavy YCSB over both cache settings (off first,
/// then on) on fresh clusters.
pub fn value_cache_ab(txns: usize) -> CacheReport {
    CacheReport {
        off: measure_value_cache(txns, false),
        on: measure_value_cache(txns, true),
    }
}

/// One side of the `pipeline` A/B.
#[derive(Debug, Clone)]
pub struct PipelineSide {
    /// Routines multiplexed per worker slot on this side.
    pub routines: usize,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted attempts.
    pub aborted: u64,
    /// Cluster virtual-time throughput, txns/sec.
    pub throughput: f64,
    /// Total virtual ns routines spent waiting on verb completions.
    pub wait_ns: u64,
    /// Portion of the wait overlapped with other routines' CPU work.
    pub overlap_ns: u64,
}

impl PipelineSide {
    /// Aborted attempts per attempt, in `[0, 1]`.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }

    /// Fraction of verb wait hidden behind other routines' CPU work.
    pub fn hiding_ratio(&self) -> f64 {
        if self.wait_ns == 0 {
            0.0
        } else {
            self.overlap_ns as f64 / self.wait_ns as f64
        }
    }
}

/// Runs the shell's read-heavy YCSB on a fresh cluster with `routines`
/// in-flight transactions per worker slot and scrapes the pipeline
/// counters.
fn measure_pipeline(txns: usize, routines: usize) -> PipelineSide {
    use drtm_workloads::driver::{build_ycsb, run_ycsb_on, RunCfg};
    let cfg = shell_ycsb_cfg();
    let run = RunCfg {
        threads: 2,
        txns_per_worker: txns.max(1),
        routines,
        ..Default::default()
    };
    let (cluster, calvin) = build_ycsb(&cfg, &run);
    let m = run_ycsb_on(&cfg, &run, &cluster, calvin.as_ref());
    let snap = drtm_core::scrape_cluster(&cluster);
    PipelineSide {
        routines,
        committed: m.committed,
        aborted: m.aborted,
        throughput: m.throughput,
        wait_ns: snap.pipeline.wait_ns,
        overlap_ns: snap.pipeline.overlap_ns,
    }
}

/// The `pipeline` command's result: the same read-heavy YCSB measured
/// with 1 blocking routine and 8 pipelined routines per worker slot.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The blocking baseline (`routines = 1`).
    pub base: PipelineSide,
    /// The pipelined side (`routines = 8`).
    pub piped: PipelineSide,
}

impl PipelineReport {
    /// Relative virtual-time throughput gain of the pipelined side
    /// (0.25 = 25% faster than the blocking baseline).
    pub fn gain(&self) -> f64 {
        if self.base.throughput == 0.0 {
            0.0
        } else {
            self.piped.throughput / self.base.throughput - 1.0
        }
    }

    /// Renders the human-readable A/B table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "routine-pipelining A/B on read-heavy YCSB-B, 60% cross-machine \
             ({} committed blocking, {} committed pipelined):\n",
            self.base.committed, self.piped.committed
        );
        out += &format!(
            "  {:<18} {:>12} {:>12}\n  {:<18} {:>12.0} {:>12.0}\n  \
             {:<18} {:>11.1}% {:>11.1}%\n  {:<18} {:>11.1}% {:>11.1}%\n",
            "",
            format!("{} routine", self.base.routines),
            format!("{} routines", self.piped.routines),
            "throughput (tps)",
            self.base.throughput,
            self.piped.throughput,
            "abort rate",
            self.base.abort_rate() * 100.0,
            self.piped.abort_rate() * 100.0,
            "latency hidden",
            self.base.hiding_ratio() * 100.0,
            self.piped.hiding_ratio() * 100.0,
        );
        out += &format!(
            "  throughput: {:.0} -> {:.0} tps ({:+.1}% virtual-time gain)",
            self.base.throughput,
            self.piped.throughput,
            self.gain() * 100.0,
        );
        out
    }
}

/// Measures the read-heavy YCSB with 1 and then 8 routines per worker
/// slot on fresh clusters.
pub fn pipeline_ab(txns: usize) -> PipelineReport {
    PipelineReport {
        base: measure_pipeline(txns, 1),
        piped: measure_pipeline(txns, 8),
    }
}

/// The YCSB behind `contend`: read-modify-write (mix F), 99%-zipfian
/// over a deliberately tiny record set, and mostly cross-machine, so
/// the hot head of the distribution turns into genuine lock occupancy.
/// Mix F rather than A because every F op both reads and locks its
/// row — an abort throws away a remote round trip, which is exactly
/// the waste the escalation ladder exists to avoid; A's blind
/// single-key writes re-execute nearly for free.
fn contend_ycsb_cfg() -> drtm_workloads::ycsb::YcsbCfg {
    drtm_workloads::ycsb::YcsbCfg {
        nodes: 2,
        records: 32,
        theta: 0.99,
        cross_prob: 0.6,
        mix: drtm_workloads::ycsb::YcsbMix::F,
        ..Default::default()
    }
}

/// The SmallBank behind `contend`: a handful of accounts with almost
/// every access landing in the hot set, so send-payment convoys form
/// on the same few savings/checking rows.
fn contend_smallbank_cfg() -> drtm_workloads::smallbank::SbCfg {
    drtm_workloads::smallbank::SbCfg {
        nodes: 2,
        accounts: 16,
        hot_fraction: 0.25,
        hot_prob: 0.95,
        cross_prob: 0.4,
    }
}

/// One measured side of the `contend` A/B: a hot-key workload run
/// under one contention-management policy.
#[derive(Debug, Clone)]
pub struct ContendSide {
    /// The policy this side ran under.
    pub policy: drtm_core::ContentionPolicy,
    /// Committed transactions.
    pub committed: u64,
    /// Aborted attempts.
    pub aborted: u64,
    /// Cluster virtual-time throughput, txns/sec.
    pub throughput: f64,
    /// Commits forced through rung 2's pessimistic C.1.
    pub pessimistic: u64,
    /// Routines parked on a per-key wait list (rung 3).
    pub parks: u64,
    /// Parked routines granted by a holder's unlock.
    pub grants: u64,
}

impl ContendSide {
    /// Aborted attempts per attempt, in `[0, 1]`.
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.committed + self.aborted;
        if attempts == 0 {
            0.0
        } else {
            self.aborted as f64 / attempts as f64
        }
    }
}

/// The same hot-key workload measured with the ladder off and on.
#[derive(Debug, Clone)]
pub struct ContendPair {
    /// Rung-1 backoff only (`ContentionPolicy::Off`).
    pub off: ContendSide,
    /// The full ladder (`ContentionPolicy::Escalate`).
    pub escalated: ContendSide,
}

impl ContendPair {
    /// Relative committed virtual-time throughput gain of the ladder
    /// (0.15 = 15% more committed txns per virtual second).
    pub fn gain(&self) -> f64 {
        if self.off.throughput == 0.0 {
            0.0
        } else {
            self.escalated.throughput / self.off.throughput - 1.0
        }
    }

    fn render_into(&self, out: &mut String, name: &str) {
        *out += &format!(
            "  {name}: {:.0} -> {:.0} tps ({:+.1}%), abort rate {:.1}% -> {:.1}%\n",
            self.off.throughput,
            self.escalated.throughput,
            self.gain() * 100.0,
            self.off.abort_rate() * 100.0,
            self.escalated.abort_rate() * 100.0,
        );
        *out += &format!(
            "    escalations: {} pessimistic commits, {} parks ({} granted)\n",
            self.escalated.pessimistic, self.escalated.parks, self.escalated.grants,
        );
    }
}

/// The `contend` command's result: the escalation-ladder A/B over the
/// two canonical hot-key workloads.
#[derive(Debug, Clone)]
pub struct ContendReport {
    /// 99%-zipfian write-heavy YCSB-A, 60% cross-machine.
    pub ycsb: ContendPair,
    /// Hot-account SmallBank (16 accounts, 95% hot).
    pub smallbank: ContendPair,
}

impl ContendReport {
    /// Renders the human-readable A/B table.
    pub fn render(&self) -> String {
        let mut out =
            String::from("contention-ladder A/B (policy off vs escalate, DESIGN.md \u{a7}15):\n");
        self.ycsb.render_into(&mut out, "ycsb-f 99%-zipfian");
        self.smallbank
            .render_into(&mut out, "smallbank hot-account");
        out += &format!(
            "  committed throughput gain: ycsb {:+.1}%, smallbank {:+.1}%",
            self.ycsb.gain() * 100.0,
            self.smallbank.gain() * 100.0,
        );
        out
    }
}

/// Runs the hot YCSB on a fresh cluster under `policy` and scrapes the
/// contention counters.
fn measure_contend_ycsb(txns: usize, policy: drtm_core::ContentionPolicy) -> ContendSide {
    use drtm_workloads::driver::{build_ycsb, run_ycsb_on, RunCfg};
    let cfg = contend_ycsb_cfg();
    let run = RunCfg {
        threads: 2,
        txns_per_worker: txns.max(1),
        routines: 8,
        contention: policy,
        ..Default::default()
    };
    let (cluster, calvin) = build_ycsb(&cfg, &run);
    let m = run_ycsb_on(&cfg, &run, &cluster, calvin.as_ref());
    let snap = drtm_core::scrape_cluster(&cluster);
    ContendSide {
        policy,
        committed: m.committed,
        aborted: m.aborted,
        throughput: m.throughput,
        pessimistic: snap.contention.pessimistic,
        parks: snap.contention.parks,
        grants: snap.contention.grants,
    }
}

/// Runs the hot SmallBank on a fresh cluster under `policy` and
/// scrapes the contention counters.
fn measure_contend_smallbank(txns: usize, policy: drtm_core::ContentionPolicy) -> ContendSide {
    use drtm_workloads::driver::{build_smallbank, run_smallbank_on, RunCfg};
    let cfg = contend_smallbank_cfg();
    let run = RunCfg {
        threads: 2,
        txns_per_worker: txns.max(1),
        routines: 8,
        contention: policy,
        ..Default::default()
    };
    let (cluster, calvin) = build_smallbank(&cfg, &run);
    let m = run_smallbank_on(&cfg, &run, &cluster, calvin.as_ref());
    let snap = drtm_core::scrape_cluster(&cluster);
    ContendSide {
        policy,
        committed: m.committed,
        aborted: m.aborted,
        throughput: m.throughput,
        pessimistic: snap.contention.pessimistic,
        parks: snap.contention.parks,
        grants: snap.contention.grants,
    }
}

/// Measures both hot-key workloads under `off` and then `escalate` on
/// fresh clusters (four runs total).
pub fn contend_ab(txns: usize) -> ContendReport {
    use drtm_core::ContentionPolicy;
    ContendReport {
        ycsb: ContendPair {
            off: measure_contend_ycsb(txns, ContentionPolicy::Off),
            escalated: measure_contend_ycsb(txns, ContentionPolicy::Escalate),
        },
        smallbank: ContendPair {
            off: measure_contend_smallbank(txns, ContentionPolicy::Off),
            escalated: measure_contend_smallbank(txns, ContentionPolicy::Escalate),
        },
    }
}

/// One measured side of the `serve` A/B: an open-loop client run over
/// real loopback TCP against a fresh in-process serving front-end.
#[derive(Debug, Clone)]
pub struct ServeSide {
    /// Offered rate in requests/sec (`0` = all-at-once burst).
    pub offered: f64,
    /// Requests sent.
    pub sent: u64,
    /// Requests admitted and committed by the engine.
    pub committed: u64,
    /// Requests admitted but aborted by the engine.
    pub aborted: u64,
    /// Requests shed by admission control with a fast `Rejected`.
    pub rejected: u64,
    /// Committed requests per wall-clock second.
    pub goodput: f64,
    /// Median wall latency of admitted requests, ns from each
    /// request's *scheduled* arrival (coordinated-omission-safe).
    pub p50_ns: u64,
    /// 99th-percentile wall latency of admitted requests, ns.
    pub p99_ns: u64,
    /// `true` when the post-drain conservation audit balanced.
    pub conserved: bool,
}

impl ServeSide {
    /// Fraction of offered requests shed by admission control.
    pub fn shed_rate(&self) -> f64 {
        if self.sent == 0 {
            0.0
        } else {
            self.rejected as f64 / self.sent as f64
        }
    }
}

/// Boots a fresh loopback serving front-end (2 engine machines, 2
/// routines each, a 16-deep admission queue) and drives `requests`
/// zero-sum SmallBank requests at `rate` req/s (0 = burst), then
/// drains gracefully and audits conservation.
fn measure_serve(requests: usize, rate: f64) -> Result<ServeSide, String> {
    use drtm_net::{run_client, ClientCfg, Server, ServerCfg};
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 200,
        replicas: 1,
        routines: 2,
        high_water: 16,
        window: 2_048,
        ..Default::default()
    })
    .map_err(|e| format!("serve: bind failed: {e}"))?;
    let initial = server.initial_total();
    let report = run_client(&ClientCfg {
        addr: server.local_addr().to_string(),
        rate,
        requests,
        seed: 0xAB,
        conns: 4,
        zero_sum: true,
        cross_prob: 0.2,
        shard_skew: 0.0,
    })
    .map_err(|e| format!("serve: client failed: {e}"))?;
    let drained = server.shutdown();
    let (cluster, sb) = (drained.cluster, drained.sb);
    Ok(ServeSide {
        offered: rate,
        sent: report.sent,
        committed: report.committed,
        aborted: report.aborted,
        rejected: report.rejected,
        goodput: report.goodput,
        p50_ns: report.latency.quantile(0.5),
        p99_ns: report.latency.quantile(0.99),
        conserved: Server::audit_total(&cluster, &sb) == initial,
    })
}

/// The `serve` command's result: the same zero-sum SmallBank request
/// count offered once paced under capacity and once as an all-at-once
/// burst far past the admission high-water mark.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// The paced, under-capacity side.
    pub paced: ServeSide,
    /// The all-at-once overload side.
    pub burst: ServeSide,
}

impl ServeReport {
    /// Renders the human-readable A/B table.
    pub fn render(&self) -> String {
        let audit = |ok: bool| if ok { "OK" } else { "VIOLATED" };
        let mut out = format!(
            "serving-tier A/B on loopback TCP, zero-sum SmallBank x{} \
             (2 machines, 16-deep admission queue):\n",
            self.paced.sent
        );
        out += &format!(
            "  {:<18} {:>12} {:>12}\n  {:<18} {:>12.0} {:>12.0}\n  \
             {:<18} {:>12.1} {:>12.1}\n  {:<18} {:>12.1} {:>12.1}\n  \
             {:<18} {:>11.1}% {:>11.1}%\n",
            "",
            format!("{:.0}/s paced", self.paced.offered),
            "burst",
            "goodput (txn/s)",
            self.paced.goodput,
            self.burst.goodput,
            "p50 (us)",
            self.paced.p50_ns as f64 / 1e3,
            self.burst.p50_ns as f64 / 1e3,
            "p99 (us)",
            self.paced.p99_ns as f64 / 1e3,
            self.burst.p99_ns as f64 / 1e3,
            "shed",
            self.paced.shed_rate() * 100.0,
            self.burst.shed_rate() * 100.0,
        );
        out += &format!(
            "  conservation: paced {}, burst {} — admission control sheds the \
             overload while admitted p99 stays bounded",
            audit(self.paced.conserved),
            audit(self.burst.conserved),
        );
        out
    }
}

/// Runs the serving-tier A/B: `requests` zero-sum SmallBank requests
/// paced at 500/s, then the same count as one all-at-once burst, each
/// against a fresh front-end.
pub fn serve_ab(requests: usize) -> Result<ServeReport, String> {
    Ok(ServeReport {
        paced: measure_serve(requests, 500.0)?,
        burst: measure_serve(requests, 0.0)?,
    })
}

/// One measured side of the `route` A/B: the same single-home-heavy
/// zero-sum SmallBank burst against a fresh loopback front-end running
/// one admission policy (DESIGN.md §16).
#[derive(Debug, Clone)]
pub struct RouteSide {
    /// Admission policy label: `"off"` = one shared queue, `"on"` =
    /// per-pool routed queues with bounded work stealing.
    pub route: &'static str,
    /// Requests sent by the client.
    pub sent: u64,
    /// Committed requests.
    pub committed: u64,
    /// Aborted requests.
    pub aborted: u64,
    /// Requests shed by admission control (0 here: the high-water mark
    /// is set above the burst so the A/B compares commit-path locality,
    /// not shedding).
    pub rejected: u64,
    /// Virtual nanoseconds the engine pools ran for (the slowest pump
    /// worker's clock at drain).
    pub virtual_ns: u64,
    /// Requests enqueued on their home pool (routed side only).
    pub local: u64,
    /// Requests enqueued away from their home pool.
    pub remote: u64,
    /// Cross-pool work steals over the drain.
    pub steals: u64,
    /// `true` when the post-drain conservation audit balanced.
    pub conserved: bool,
}

impl RouteSide {
    /// Committed transactions per *virtual* second — the A/B metric.
    /// Routing pays off as all-local HTM commits that skip the
    /// commit-path verbs (C.1 CAS, C.2 validate READs, C.5 writes, C.6
    /// unlock), which shows up directly as less virtual time per
    /// committed transaction.
    pub fn vtps(&self) -> f64 {
        self.committed as f64 / (self.virtual_ns.max(1) as f64 / 1e9)
    }
}

/// Runs one side of the `route` A/B: a fresh front-end under `policy`,
/// hit with a single-home-heavy (5% cross-shard) zero-sum SmallBank
/// burst, mildly skewed toward one home shard so the routed side's
/// steal path also engages.
fn measure_route(requests: usize, policy: drtm_core::RoutePolicy) -> Result<RouteSide, String> {
    use drtm_net::{run_client, ClientCfg, Server, ServerCfg};
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 200,
        replicas: 1,
        routines: 2,
        // Above the burst so nothing sheds: the A/B compares commit
        // locality, not admission control.
        high_water: requests.max(16),
        window: 2_048,
        route: policy,
        steal_reserve: 2,
        ..Default::default()
    })
    .map_err(|e| format!("route: bind failed: {e}"))?;
    let initial = server.initial_total();
    let report = run_client(&ClientCfg {
        addr: server.local_addr().to_string(),
        rate: 0.0,
        requests,
        seed: 0x60,
        conns: 4,
        zero_sum: true,
        cross_prob: 0.05,
        shard_skew: 0.3,
    })
    .map_err(|e| format!("route: client failed: {e}"))?;
    let drained = server.shutdown();
    Ok(RouteSide {
        route: if drained.snap.route.enabled {
            "on"
        } else {
            "off"
        },
        sent: report.sent,
        committed: report.committed,
        aborted: report.aborted,
        rejected: report.rejected,
        virtual_ns: drained.virtual_ns,
        local: drained.snap.route.local,
        remote: drained.snap.route.remote,
        steals: drained.snap.route.steals,
        conserved: Server::audit_total(&drained.cluster, &drained.sb) == initial,
    })
}

/// The `route` command's result: the same burst through the shared
/// queue and through the shard-affinity router.
#[derive(Debug, Clone)]
pub struct RouteReport {
    /// The shared-queue (`--route off`) side.
    pub shared: RouteSide,
    /// The routed (`--route on`) side.
    pub routed: RouteSide,
    /// Requests offered per side.
    pub requests: usize,
}

impl RouteReport {
    /// Routed over shared committed txns per virtual second.
    pub fn speedup(&self) -> f64 {
        self.routed.vtps() / self.shared.vtps().max(f64::MIN_POSITIVE)
    }

    /// Renders the human-readable A/B table.
    pub fn render(&self) -> String {
        let audit = |ok: bool| if ok { "OK" } else { "VIOLATED" };
        let mut out = format!(
            "shard-affinity routing A/B on loopback TCP, zero-sum SmallBank x{} \
             burst (2 machines, 5% cross-shard, skew 0.30):\n",
            self.requests
        );
        out += &format!(
            "  {:<22} {:>12} {:>12}\n  {:<22} {:>12} {:>12}\n  \
             {:<22} {:>12.0} {:>12.0}\n  {:<22} {:>12.3} {:>12.3}\n  \
             {:<22} {:>12} {:>12}\n  {:<22} {:>12} {:>12}\n",
            "",
            "shared",
            "routed",
            "committed",
            self.shared.committed,
            self.routed.committed,
            "committed/virt-s",
            self.shared.vtps(),
            self.routed.vtps(),
            "virtual time (s)",
            self.shared.virtual_ns as f64 / 1e9,
            self.routed.virtual_ns as f64 / 1e9,
            "local/remote",
            format!("{}/{}", self.shared.local, self.shared.remote),
            format!("{}/{}", self.routed.local, self.routed.remote),
            "steals",
            self.shared.steals,
            self.routed.steals,
        );
        out += &format!(
            "  conservation: shared {}, routed {}\n  speedup: {:.2}x committed \
             txns per virtual second — home-pool dispatch turns single-home \
             requests into all-local HTM commits with zero commit-path verbs",
            audit(self.shared.conserved),
            audit(self.routed.conserved),
            self.speedup(),
        );
        out
    }

    fn side_json(s: &RouteSide) -> String {
        format!(
            concat!(
                "{{\"route\":\"{}\",\"sent\":{},\"committed\":{},\"aborted\":{},",
                "\"rejected\":{},\"virtual_ns\":{},\"vtps\":{:.1},\"local\":{},",
                "\"remote\":{},\"steals\":{},\"conserved\":{}}}"
            ),
            s.route,
            s.sent,
            s.committed,
            s.aborted,
            s.rejected,
            s.virtual_ns,
            s.vtps(),
            s.local,
            s.remote,
            s.steals,
            s.conserved,
        )
    }

    /// Serializes the A/B as the `BENCH_pr10.json` artifact: the shared
    /// stamp object plus both sides and the virtual-time speedup.
    pub fn to_json(&self, stamp: &str) -> String {
        format!(
            "{{\"stamp\":{stamp},\"requests\":{},\"speedup\":{:.3},\n\
             \"shared\":{},\n\"routed\":{}}}\n",
            self.requests,
            self.speedup(),
            Self::side_json(&self.shared),
            Self::side_json(&self.routed),
        )
    }
}

/// Runs the routing A/B: `requests` single-home-heavy zero-sum
/// SmallBank requests as one burst, once against a shared-queue
/// front-end and once against the shard-affinity router.
pub fn route_ab(requests: usize) -> Result<RouteReport, String> {
    Ok(RouteReport {
        shared: measure_route(requests, drtm_core::RoutePolicy::Shared)?,
        routed: measure_route(requests, drtm_core::RoutePolicy::Routed)?,
        requests,
    })
}

/// One grid point of a `loadcurve` sweep.
#[derive(Debug, Clone)]
pub struct LoadCurvePoint {
    /// Offered rate, req/s.
    pub offered: f64,
    /// Requests sent at this rate.
    pub sent: u64,
    /// Committed / aborted / shed split.
    pub committed: u64,
    /// Engine aborts.
    pub aborted: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Committed requests per wall second.
    pub goodput: f64,
    /// Admitted wall latency from the *scheduled* arrival
    /// (coordinated-omission-safe), ns.
    pub p50_ns: u64,
    /// 99th percentile, ns.
    pub p99_ns: u64,
    /// 99.9th percentile, ns.
    pub p999_ns: u64,
    /// Cumulative `accepted` read from the live mid-sweep scrape of
    /// the running server (monotone across points).
    pub live_accepted: u64,
    /// Cumulative `completed` from the same live scrape.
    pub live_completed: u64,
}

/// The `loadcurve` sweep result: one server, ascending offered rates,
/// a live scrape after every point, and the post-drain conservation
/// audit.
#[derive(Debug, Clone)]
pub struct LoadCurveReport {
    /// Grid points in ascending offered-rate order.
    pub points: Vec<LoadCurvePoint>,
    /// Requests offered per point.
    pub requests: usize,
    /// `true` when the post-drain conservation audit balanced.
    pub conserved: bool,
    /// Admission routing policy the server ran (`"off"` / `"on"`,
    /// DESIGN.md §16), stamped into the artifact.
    pub route: &'static str,
    /// Total cross-pool work steals over the sweep (0 with routing
    /// off).
    pub steals: u64,
}

impl LoadCurveReport {
    /// Renders the human-readable latency-vs-load table.
    pub fn render(&self) -> String {
        let mut out = format!(
            "latency vs offered load, zero-sum SmallBank x{} per point \
             (one server, live-scraped between points):\n  {:>9} {:>9} {:>7} \
             {:>9} {:>9} {:>9} {:>7}\n",
            self.requests, "rate/s", "goodput", "shed%", "p50 us", "p99 us", "p999 us", "live ok"
        );
        for p in &self.points {
            let shed = if p.sent == 0 {
                0.0
            } else {
                p.rejected as f64 / p.sent as f64 * 100.0
            };
            out += &format!(
                "  {:>9.0} {:>9.0} {:>6.1}% {:>9.1} {:>9.1} {:>9.1} {:>7}\n",
                p.offered,
                p.goodput,
                shed,
                p.p50_ns as f64 / 1e3,
                p.p99_ns as f64 / 1e3,
                p.p999_ns as f64 / 1e3,
                if p.live_completed <= p.live_accepted {
                    "yes"
                } else {
                    "NO"
                },
            );
        }
        out += &format!(
            "  conservation: {}",
            if self.conserved { "OK" } else { "VIOLATED" }
        );
        out
    }

    /// Serializes the sweep as the `BENCH_loadcurve.json` artifact:
    /// the shared stamp object (git rev, UTC, run config) plus one
    /// entry per grid point, rates ascending.
    pub fn to_json(&self, stamp: &str) -> String {
        let mut out = format!(
            "{{\"stamp\":{stamp},\"requests_per_point\":{},\"conserved\":{},\
             \"route\":\"{}\",\"steals\":{},\"points\":[",
            self.requests, self.conserved, self.route, self.steals
        );
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out += &format!(
                concat!(
                    "\n{{\"offered\":{:.1},\"sent\":{},\"committed\":{},",
                    "\"aborted\":{},\"rejected\":{},\"goodput\":{:.1},",
                    "\"p50_us\":{:.1},\"p99_us\":{:.1},\"p999_us\":{:.1},",
                    "\"live_accepted\":{},\"live_completed\":{}}}"
                ),
                p.offered,
                p.sent,
                p.committed,
                p.aborted,
                p.rejected,
                p.goodput,
                p.p50_ns as f64 / 1e3,
                p.p99_ns as f64 / 1e3,
                p.p999_ns as f64 / 1e3,
                p.live_accepted,
                p.live_completed,
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

/// Pulls one integer counter out of a live stats-JSON scrape's
/// `"net":{...}` section.
fn live_net_counter(json: &str, key: &str) -> u64 {
    json.split("\"net\":{")
        .nth(1)
        .and_then(|net| net.split(&format!("\"{key}\":")).nth(1))
        .map(|t| {
            t.chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap_or(0)
        })
        .unwrap_or(0)
}

/// Sweeps `rates` (sorted ascending) against one loopback serving
/// front-end: each point is an open-loop client run followed by a live
/// `StatsRequest` scrape of the still-running server, so the artifact
/// also demonstrates the live telemetry path. The server drains once,
/// after the whole sweep, and the conservation audit runs then.
pub fn load_curve(rates: &[f64], requests: usize) -> Result<LoadCurveReport, String> {
    use drtm_net::{run_client, scrape, ClientCfg, ScrapeFormat, Server, ServerCfg};
    let mut rates: Vec<f64> = rates.to_vec();
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite rates"));
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 200,
        replicas: 1,
        routines: 2,
        high_water: 64,
        window: 2_048,
        ..Default::default()
    })
    .map_err(|e| format!("loadcurve: bind failed: {e}"))?;
    let initial = server.initial_total();
    let addr = server.local_addr().to_string();

    let mut points = Vec::with_capacity(rates.len());
    for (i, &rate) in rates.iter().enumerate() {
        let report = run_client(&ClientCfg {
            addr: addr.clone(),
            rate,
            requests,
            seed: 0xAB + i as u64,
            conns: 4,
            zero_sum: true,
            cross_prob: 0.2,
            shard_skew: 0.0,
        })
        .map_err(|e| format!("loadcurve: client failed at {rate}/s: {e}"))?;
        let live = scrape(&addr, ScrapeFormat::Json)
            .map_err(|e| format!("loadcurve: live scrape failed at {rate}/s: {e}"))?;
        let live = String::from_utf8_lossy(&live);
        points.push(LoadCurvePoint {
            offered: rate,
            sent: report.sent,
            committed: report.committed,
            aborted: report.aborted,
            rejected: report.rejected,
            goodput: report.goodput,
            p50_ns: report.latency.quantile(0.5),
            p99_ns: report.latency.quantile(0.99),
            p999_ns: report.latency.quantile(0.999),
            live_accepted: live_net_counter(&live, "accepted"),
            live_completed: live_net_counter(&live, "completed"),
        });
    }
    let drained = server.shutdown();
    Ok(LoadCurveReport {
        points,
        requests,
        conserved: Server::audit_total(&drained.cluster, &drained.sb) == initial,
        route: if drained.snap.route.enabled {
            "on"
        } else {
            "off"
        },
        steals: drained.snap.route.steals,
    })
}

fn val(x: u64) -> Vec<u8> {
    let mut v = vec![0u8; VALUE_LEN];
    v[..8].copy_from_slice(&x.to_le_bytes());
    v
}

fn num_of(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

impl Shell {
    /// Creates an empty shell (no cluster yet).
    pub fn new() -> Self {
        Self::default()
    }

    /// A final text stats scrape for graceful-shutdown paths (SIGINT /
    /// SIGTERM), `None` when no cluster was ever created.
    pub fn final_scrape(&self) -> Option<String> {
        let cluster = self.cluster.as_ref()?;
        let snap = drtm_core::scrape_cluster(cluster);
        Some(drtm_obs::expo::render_text(&snap))
    }

    fn worker_for(&mut self, shard: usize) -> Result<&mut Worker, String> {
        let cluster = self
            .cluster
            .as_ref()
            .ok_or("no cluster (run `cluster N` first)")?;
        if self.workers.is_empty() {
            // A benchmark cluster (e.g. `smallbank`) has no interactive
            // workers and a workload-specific schema.
            return Err(
                "this cluster is read-only for stats (run `cluster N` for a KV one)".into(),
            );
        }
        let node = cluster.home_of(shard);
        Ok(&mut self.workers[node])
    }

    fn check_shard(&self, shard: usize) -> Result<(), String> {
        let cluster = self
            .cluster
            .as_ref()
            .ok_or("no cluster (run `cluster N` first)")?;
        if shard >= cluster.nodes() {
            return Err(format!(
                "shard {shard} out of range (cluster has {})",
                cluster.nodes()
            ));
        }
        Ok(())
    }

    /// Executes one command, returning the text to print (or `None` to
    /// exit).
    pub fn execute(&mut self, cmd: Cmd) -> Result<Option<String>, String> {
        match cmd {
            Cmd::Cluster { nodes, replicas } => {
                if nodes == 0 || replicas == 0 || replicas > nodes {
                    return Err("need nodes >= replicas >= 1".into());
                }
                let opts = EngineOpts::builder()
                    .replicas(replicas)
                    .region_size(16 << 20)
                    .build();
                let cluster =
                    DrtmCluster::new(nodes, &[TableSpec::hash(TABLE, 1 << 14, VALUE_LEN)], opts);
                self.workers = (0..nodes)
                    .map(|n| cluster.worker(n, 0xC11 + n as u64))
                    .collect();
                self.last_nic.clear();
                self.cluster = Some(cluster);
                Ok(Some(format!(
                    "cluster up: {nodes} machines, {replicas} copies per record"
                )))
            }
            Cmd::Put { shard, key, value } => {
                self.check_shard(shard)?;
                let w = self.worker_for(shard)?;
                let r = w.run(|t| match t.read(shard, TABLE, key) {
                    Ok(_) => t.write(shard, TABLE, key, val(value)),
                    Err(TxnError::NotFound) => {
                        t.insert(shard, TABLE, key, val(value));
                        Ok(())
                    }
                    Err(e) => Err(e),
                });
                match r {
                    Ok(()) => Ok(Some(format!("{shard}/{key} = {value}"))),
                    Err(e) => Err(format!("put failed: {e:?}")),
                }
            }
            Cmd::Get { shard, key } => {
                self.check_shard(shard)?;
                let w = self.worker_for(shard)?;
                match w.run_ro(|t| t.read(shard, TABLE, key)) {
                    Ok(v) => Ok(Some(format!("{shard}/{key} = {}", num_of(&v)))),
                    Err(TxnError::NotFound) => Ok(Some(format!("{shard}/{key} (not found)"))),
                    Err(e) => Err(format!("get failed: {e:?}")),
                }
            }
            Cmd::Del { shard, key } => {
                self.check_shard(shard)?;
                let w = self.worker_for(shard)?;
                w.run(|t| {
                    t.read(shard, TABLE, key)?;
                    t.delete(shard, TABLE, key);
                    Ok(())
                })
                .map_err(|e| format!("del failed: {e:?}"))?;
                Ok(Some(format!("{shard}/{key} deleted")))
            }
            Cmd::Transfer { from, to, amount } => {
                self.check_shard(from.0)?;
                self.check_shard(to.0)?;
                if from == to {
                    return Err("cannot transfer a key to itself".into());
                }
                let w = self.worker_for(from.0)?;
                let r = w.run(|t| {
                    let a = num_of(&t.read(from.0, TABLE, from.1)?);
                    let b = num_of(&t.read(to.0, TABLE, to.1)?);
                    if a < amount {
                        return Err(TxnError::UserAbort);
                    }
                    t.write(from.0, TABLE, from.1, val(a - amount))?;
                    t.write(to.0, TABLE, to.1, val(b + amount))
                });
                match r {
                    Ok(()) => Ok(Some(format!(
                        "transferred {amount}: {}/{} -> {}/{}",
                        from.0, from.1, to.0, to.1
                    ))),
                    Err(TxnError::UserAbort) => Err("insufficient funds".into()),
                    Err(e) => Err(format!("transfer failed: {e:?}")),
                }
            }
            Cmd::Crash { node } => {
                self.check_shard(node)?;
                let cluster = self.cluster.as_ref().unwrap();
                cluster.crash(node);
                Ok(Some(format!("machine {node} fail-stopped (lease revoked)")))
            }
            Cmd::Recover { node } => {
                self.check_shard(node)?;
                let cluster = self.cluster.as_ref().unwrap();
                let report = recover_node(cluster, node);
                Ok(Some(match report.new_home {
                    Some(h) => format!(
                        "recovered {} records onto machine {h} (epoch {}, {} log entries replayed)",
                        report.records_recovered, report.epoch, report.log_entries_replayed
                    ),
                    None => format!(
                        "machine {node} removed (epoch {}); no replicas to recover from",
                        report.epoch
                    ),
                }))
            }
            Cmd::Scrub => {
                let cluster = self.cluster.as_ref().ok_or("no cluster")?;
                let (locks, fwd, back) = full_restart_scrub(cluster);
                Ok(Some(format!(
                    "scrubbed: {locks} locks cleared, {fwd} rolled forward, {back} rolled back"
                )))
            }
            Cmd::Chaos {
                seed,
                node,
                point,
                hit,
            } => {
                // Standalone run on its own 4-machine cluster — the
                // shell's interactive cluster (if any) is not touched.
                let cfg = drtm_chaos::ChaosRunCfg {
                    nodes: 4,
                    cross_prob: 0.5,
                    supervisor: drtm_chaos::SupervisorCfg {
                        lease_us: 50_000,
                        heartbeat: std::time::Duration::from_millis(5),
                        poll: std::time::Duration::from_millis(1),
                    },
                    ..drtm_chaos::ChaosRunCfg::default()
                };
                if node >= cfg.nodes {
                    return Err(format!("node {node} out of range (chaos runs on 4)"));
                }
                let plan = drtm_chaos::FaultPlan::new(seed).crash_at(node, point, hit);
                let out = drtm_chaos::run_smallbank_chaos(&cfg, plan);
                let mut text = format!(
                    "chaos run (seed {seed}): kill machine {node} at {point} hit {hit}\n\
                     {} committed, {} aborted, {} crash fired, {} worker(s) died",
                    out.committed, out.aborted, out.crashes_fired, out.crashed_workers
                );
                for ev in &out.events {
                    text += &format!(
                        "\nrecovered machine {} (epoch {}): {} records, {} log entries, \
                         detect {:?}, config {:?}, rebuild {:?}",
                        ev.dead,
                        ev.report.epoch,
                        ev.report.records_recovered,
                        ev.report.log_entries_replayed,
                        ev.detect.unwrap_or_default(),
                        ev.report.config_commit,
                        ev.report.rebuild,
                    );
                }
                text += &format!(
                    "\naudit: total {} vs {}, {} stale locks -> {}",
                    out.final_total,
                    out.initial_total,
                    out.stale_locks,
                    if out.audit_ok() { "OK" } else { "FAILED" }
                );
                Ok(Some(text))
            }
            Cmd::Smallbank { txns } => {
                use drtm_workloads::driver::{build_smallbank, run_smallbank_on, RunCfg};
                let cfg = shell_smallbank_cfg();
                let run = RunCfg {
                    threads: 3,
                    txns_per_worker: txns.max(1),
                    ..Default::default()
                };
                let (cluster, calvin) = build_smallbank(&cfg, &run);
                let m = run_smallbank_on(&cfg, &run, &cluster, calvin.as_ref());
                self.workers.clear();
                self.last_nic.clear();
                self.cluster = Some(cluster);
                Ok(Some(format!(
                    "smallbank: {} committed, {} aborted, {} fallbacks over {} machines \
                     ({} txns/worker x 3 threads); see `stats`",
                    m.committed, m.aborted, m.fallbacks, cfg.nodes, run.txns_per_worker,
                )))
            }
            Cmd::Breakdown { txns } => {
                // Standalone A/B on two fresh clusters — the shell's
                // interactive cluster (if any) is not touched.
                Ok(Some(smallbank_breakdown(txns.max(1)).render()))
            }
            Cmd::Cache { txns } => {
                // Same standalone-A/B shape as `breakdown`.
                Ok(Some(value_cache_ab(txns.max(1)).render()))
            }
            Cmd::Pipeline { txns } => {
                // Same standalone-A/B shape as `breakdown`.
                Ok(Some(pipeline_ab(txns.max(1)).render()))
            }
            Cmd::Contend { txns } => {
                // Same standalone-A/B shape: four fresh clusters, two
                // policies over two hot-key workloads.
                Ok(Some(contend_ab(txns.max(1)).render()))
            }
            Cmd::Serve { requests } => {
                // Same standalone-A/B shape, but over real loopback
                // TCP: each side boots its own serving front-end.
                Ok(Some(serve_ab(requests.max(1))?.render()))
            }
            Cmd::Route { requests, out } => {
                // Two fresh front-ends, one per admission policy, same
                // single-home-heavy burst.
                let report = route_ab(requests.max(1))?;
                let mut text = report.render();
                if let Some(path) = out {
                    let json = report.to_json(&drtm_bench::stamp_json(None));
                    drtm_obs::jsonlint::validate(&json).map_err(|e| {
                        format!("internal error: route artifact is not valid JSON: {e}")
                    })?;
                    std::fs::write(&path, &json)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    text += &format!("\n  wrote {path} ({} bytes)", json.len());
                }
                Ok(Some(text))
            }
            Cmd::LoadCurve {
                rates,
                requests,
                out,
            } => {
                let report = load_curve(&rates, requests.max(1))?;
                let mut text = report.render();
                if let Some(path) = out {
                    let json = report.to_json(&drtm_bench::stamp_json(None));
                    drtm_obs::jsonlint::validate(&json).map_err(|e| {
                        format!("internal error: loadcurve artifact is not valid JSON: {e}")
                    })?;
                    std::fs::write(&path, &json)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    text += &format!("\n  wrote {path} ({} bytes)", json.len());
                }
                Ok(Some(text))
            }
            Cmd::Stats { format } => {
                let cluster = Arc::clone(self.cluster.as_ref().ok_or("no cluster")?);
                let snap = drtm_core::scrape_cluster(&cluster);
                match format {
                    StatsFormat::Prom => Ok(Some(drtm_obs::expo::render_prometheus(&snap))),
                    StatsFormat::Json => Ok(Some(drtm_obs::expo::render_json(&snap))),
                    StatsFormat::Text => {
                        let mut out = drtm_obs::expo::render_text(&snap);
                        out.push_str("\nnic delta since last stats:\n");
                        let mut next = Vec::with_capacity(cluster.nodes());
                        for node in 0..cluster.nodes() {
                            let cur = cluster.fabric.port(node).stats().snapshot();
                            let prev = self.last_nic.get(node).copied().unwrap_or_default();
                            let d = cur.delta(&prev);
                            out += &format!(
                                "  node {node}: reads={} writes={} atomics={} sends={} \
                                 doorbells={} ({:.1} KB)\n",
                                d.reads,
                                d.writes,
                                d.atomics,
                                d.sends,
                                d.doorbells,
                                d.bytes as f64 / 1_024.0
                            );
                            next.push(cur);
                        }
                        self.last_nic = next;
                        out.pop();
                        Ok(Some(out))
                    }
                }
            }
            Cmd::Trace { path } => {
                let json = drtm_obs::trace::export_chrome_json_meta(&drtm_bench::stamp_json(None));
                drtm_obs::jsonlint::validate(&json)
                    .map_err(|e| format!("internal error: trace export is not valid JSON: {e}"))?;
                let events = drtm_obs::trace::buffered();
                std::fs::write(&path, &json).map_err(|e| format!("cannot write {path}: {e}"))?;
                Ok(Some(format!(
                    "wrote {} buffered events ({} bytes) to {path} — load in chrome://tracing",
                    events,
                    json.len()
                )))
            }
            Cmd::Help => Ok(Some(HELP.to_string())),
            Cmd::Quit => Ok(None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basics() {
        assert_eq!(parse("").unwrap(), None);
        assert_eq!(parse("# comment").unwrap(), None);
        assert_eq!(
            parse("cluster 3 2").unwrap(),
            Some(Cmd::Cluster {
                nodes: 3,
                replicas: 2
            })
        );
        assert_eq!(
            parse("put 0 10 99").unwrap(),
            Some(Cmd::Put {
                shard: 0,
                key: 10,
                value: 99
            })
        );
        assert_eq!(
            parse("transfer 0 1 2 3 50").unwrap(),
            Some(Cmd::Transfer {
                from: (0, 1),
                to: (2, 3),
                amount: 50
            })
        );
        assert!(parse("frobnicate").is_err());
        assert!(parse("put x y z").is_err());
    }

    #[test]
    fn session_end_to_end() {
        let mut sh = Shell::new();
        assert!(
            sh.execute(Cmd::Get { shard: 0, key: 1 }).is_err(),
            "no cluster yet"
        );
        sh.execute(Cmd::Cluster {
            nodes: 3,
            replicas: 2,
        })
        .unwrap();
        sh.execute(Cmd::Put {
            shard: 0,
            key: 1,
            value: 100,
        })
        .unwrap();
        sh.execute(Cmd::Put {
            shard: 2,
            key: 9,
            value: 50,
        })
        .unwrap();
        let out = sh.execute(Cmd::Get { shard: 0, key: 1 }).unwrap().unwrap();
        assert!(out.contains("= 100"));
        sh.execute(Cmd::Transfer {
            from: (0, 1),
            to: (2, 9),
            amount: 30,
        })
        .unwrap();
        let out = sh.execute(Cmd::Get { shard: 2, key: 9 }).unwrap().unwrap();
        assert!(out.contains("= 80"));
        // Update an existing key through put.
        sh.execute(Cmd::Put {
            shard: 0,
            key: 1,
            value: 7,
        })
        .unwrap();
        let out = sh.execute(Cmd::Get { shard: 0, key: 1 }).unwrap().unwrap();
        assert!(out.contains("= 7"));
        // Delete it.
        sh.execute(Cmd::Del { shard: 0, key: 1 }).unwrap();
        let out = sh.execute(Cmd::Get { shard: 0, key: 1 }).unwrap().unwrap();
        assert!(out.contains("not found"));
    }

    #[test]
    fn crash_recover_through_shell() {
        let mut sh = Shell::new();
        sh.execute(Cmd::Cluster {
            nodes: 3,
            replicas: 3,
        })
        .unwrap();
        sh.execute(Cmd::Put {
            shard: 1,
            key: 5,
            value: 42,
        })
        .unwrap();
        sh.execute(Cmd::Crash { node: 1 }).unwrap();
        let out = sh.execute(Cmd::Recover { node: 1 }).unwrap().unwrap();
        assert!(out.contains("recovered"), "{out}");
        // The key survives on the new home (routed transparently).
        let out = sh.execute(Cmd::Get { shard: 1, key: 5 }).unwrap().unwrap();
        assert!(out.contains("= 42"), "{out}");
    }

    #[test]
    fn transfer_guards() {
        let mut sh = Shell::new();
        sh.execute(Cmd::Cluster {
            nodes: 2,
            replicas: 1,
        })
        .unwrap();
        sh.execute(Cmd::Put {
            shard: 0,
            key: 1,
            value: 10,
        })
        .unwrap();
        sh.execute(Cmd::Put {
            shard: 1,
            key: 2,
            value: 0,
        })
        .unwrap();
        let r = sh.execute(Cmd::Transfer {
            from: (0, 1),
            to: (1, 2),
            amount: 100,
        });
        assert!(r.is_err(), "insufficient funds must fail");
        assert!(sh
            .execute(Cmd::Transfer {
                from: (0, 1),
                to: (0, 1),
                amount: 1
            })
            .is_err());
    }

    #[test]
    fn parse_chaos() {
        assert_eq!(
            parse("chaos 42 2 C.4").unwrap(),
            Some(Cmd::Chaos {
                seed: 42,
                node: 2,
                point: "C.4",
                hit: 3
            })
        );
        assert_eq!(
            parse("chaos 7 1 C.5 10").unwrap(),
            Some(Cmd::Chaos {
                seed: 7,
                node: 1,
                point: "C.5",
                hit: 10
            })
        );
        assert!(parse("chaos 7 1 C.9").is_err(), "unknown crash point");
    }

    #[test]
    fn chaos_command_runs_and_audits() {
        let mut sh = Shell::new();
        let out = sh
            .execute(Cmd::Chaos {
                seed: 42,
                node: 2,
                point: "C.4",
                hit: 5,
            })
            .unwrap()
            .unwrap();
        assert!(out.contains("recovered machine 2"), "{out}");
        assert!(out.ends_with("OK"), "{out}");
        assert!(
            sh.execute(Cmd::Chaos {
                seed: 1,
                node: 9,
                point: "C.4",
                hit: 1
            })
            .is_err(),
            "node out of range"
        );
    }

    #[test]
    fn stats_and_scrub() {
        let mut sh = Shell::new();
        sh.execute(Cmd::Cluster {
            nodes: 2,
            replicas: 2,
        })
        .unwrap();
        sh.execute(Cmd::Put {
            shard: 0,
            key: 1,
            value: 1,
        })
        .unwrap();
        let out = sh
            .execute(Cmd::Stats {
                format: StatsFormat::Text,
            })
            .unwrap()
            .unwrap();
        assert!(out.contains("node 0"), "{out}");
        assert!(out.contains("alive"), "{out}");
        assert!(out.contains("nic delta since last stats"), "{out}");
        let out = sh.execute(Cmd::Scrub).unwrap().unwrap();
        assert!(out.contains("scrubbed"));
    }

    #[test]
    fn parse_obs_commands() {
        assert_eq!(
            parse("stats").unwrap(),
            Some(Cmd::Stats {
                format: StatsFormat::Text
            })
        );
        assert_eq!(
            parse("stats prom").unwrap(),
            Some(Cmd::Stats {
                format: StatsFormat::Prom
            })
        );
        assert_eq!(
            parse("stats json").unwrap(),
            Some(Cmd::Stats {
                format: StatsFormat::Json
            })
        );
        assert_eq!(
            parse("smallbank").unwrap(),
            Some(Cmd::Smallbank { txns: 200 })
        );
        assert_eq!(
            parse("smallbank 50").unwrap(),
            Some(Cmd::Smallbank { txns: 50 })
        );
        assert_eq!(
            parse("breakdown").unwrap(),
            Some(Cmd::Breakdown { txns: 200 })
        );
        assert_eq!(
            parse("breakdown 80").unwrap(),
            Some(Cmd::Breakdown { txns: 80 })
        );
        assert_eq!(parse("cache").unwrap(), Some(Cmd::Cache { txns: 200 }));
        assert_eq!(parse("cache 60").unwrap(), Some(Cmd::Cache { txns: 60 }));
        assert_eq!(
            parse("contend").unwrap(),
            Some(Cmd::Contend { txns: 1_000 })
        );
        assert_eq!(
            parse("contend 40").unwrap(),
            Some(Cmd::Contend { txns: 40 })
        );
        assert_eq!(parse("serve").unwrap(), Some(Cmd::Serve { requests: 400 }));
        assert_eq!(
            parse("serve 100").unwrap(),
            Some(Cmd::Serve { requests: 100 })
        );
        assert_eq!(
            parse("route").unwrap(),
            Some(Cmd::Route {
                requests: 600,
                out: None
            })
        );
        assert_eq!(
            parse("route 150").unwrap(),
            Some(Cmd::Route {
                requests: 150,
                out: None
            })
        );
        assert_eq!(
            parse("route 150 json /tmp/r.json").unwrap(),
            Some(Cmd::Route {
                requests: 150,
                out: Some("/tmp/r.json".into())
            })
        );
        assert_eq!(
            parse("route json /tmp/r.json").unwrap(),
            Some(Cmd::Route {
                requests: 600,
                out: Some("/tmp/r.json".into())
            })
        );
        assert!(parse("route nope").is_err());
        assert_eq!(
            parse("trace /tmp/out.json").unwrap(),
            Some(Cmd::Trace {
                path: "/tmp/out.json".into()
            })
        );
        assert!(parse("stats xml").is_err());
    }

    /// The PR's acceptance flow: after a SmallBank run, `stats` must
    /// show per-phase p50/p99 latencies and a nonzero abort-reason
    /// breakdown, and the prom/json forms must be well-formed.
    #[test]
    fn smallbank_then_stats_shows_phases_and_aborts() {
        let mut sh = Shell::new();
        let out = sh.execute(Cmd::Smallbank { txns: 300 }).unwrap().unwrap();
        assert!(out.contains("committed"), "{out}");
        let text = sh
            .execute(Cmd::Stats {
                format: StatsFormat::Text,
            })
            .unwrap()
            .unwrap();
        // Per-phase latency table with quantile columns and the six
        // user-facing phases (plus htm/makeup).
        assert!(text.contains("p50 us"), "{text}");
        assert!(text.contains("p99 us"), "{text}");
        for phase in ["execute", "lock", "validate", "log", "update", "unlock"] {
            assert!(text.contains(phase), "missing phase {phase}: {text}");
        }
        // A hot 50-account working set with 40% cross-machine traffic
        // must produce real contention aborts.
        assert!(
            !text.contains("aborts by reason: none"),
            "expected nonzero abort breakdown: {text}"
        );
        assert!(text.contains("nic verbs"), "{text}");
        // The benchmark cluster is stats-only for KV commands.
        assert!(sh.execute(Cmd::Get { shard: 0, key: 1 }).is_err());
        // Prom and JSON forms.
        let prom = sh
            .execute(Cmd::Stats {
                format: StatsFormat::Prom,
            })
            .unwrap()
            .unwrap();
        assert!(prom.contains("drtm_txn_committed_total"), "{prom}");
        assert!(
            prom.contains("drtm_commit_phase_ns{phase=\"lock\""),
            "{prom}"
        );
        let json = sh
            .execute(Cmd::Stats {
                format: StatsFormat::Json,
            })
            .unwrap()
            .unwrap();
        drtm_obs::jsonlint::validate(&json).expect("stats json must be valid");
    }

    /// On the default SmallBank sweep, doorbell batching must cut the
    /// combined C.1+C.2+C.5+C.6 share of virtual commit time by at
    /// least 20% relative to the legacy blocking verb path (C.2 counts
    /// as fan-out since header validation moved onto the posted work
    /// queue). (The verbs-per-doorbell factor stays at 1.0
    /// here — a two-machine SmallBank transfer has exactly one remote
    /// record per destination — so the win is fewer, cheaper doorbells,
    /// not wider batches; multi-WR batches are exercised by the
    /// doorbell-count test in `drtm-core`.)
    #[test]
    fn breakdown_reduces_commit_fanout_share() {
        let report = smallbank_breakdown(200);
        assert!(report.blocking.committed > 0 && report.batched.committed > 0);
        assert!(report.batched.doorbells > 0, "{report:?}");
        assert!(
            report.batched.verbs_per_doorbell() >= report.blocking.verbs_per_doorbell(),
            "batching factor must not drop: {report:?}"
        );
        // The share drop hovers around 20-23% but the exact figure
        // moves a couple of points with OS thread interleaving (retried
        // phases re-accrue virtual time), so assert a floor with margin.
        assert!(
            report.reduction() >= 0.15,
            "C.1+C.2+C.5+C.6 share must drop >= 15%, got {:.1}% \
             (blocking {:.1}% -> batched {:.1}%)",
            report.reduction() * 100.0,
            report.blocking.fanout_share() * 100.0,
            report.batched.fanout_share() * 100.0,
        );
        let mut sh = Shell::new();
        let text = sh.execute(Cmd::Breakdown { txns: 1 }).unwrap().unwrap();
        assert!(text.contains("fan-out share"), "{text}");
        assert!(text.contains("verbs per doorbell"), "{text}");
    }

    /// The PR's acceptance criterion: on a read-heavy cross-machine
    /// YCSB-B, enabling the read-mostly value cache must reduce NIC
    /// bytes per committed transaction — cache hits skip the READ
    /// entirely and C.2 re-validates with a 24-byte header line instead
    /// of refetching the whole record.
    #[test]
    fn cache_reduces_remote_read_bytes_per_txn() {
        let report = value_cache_ab(200);
        assert!(report.off.committed > 0 && report.on.committed > 0);
        // The disabled side must not record cache traffic.
        assert_eq!(report.off.hits + report.off.misses, 0, "{report:?}");
        // The enabled side must actually get hits on a 256-record
        // zipfian working set.
        assert!(report.on.hits > 0, "{report:?}");
        assert!(
            report.on.bytes_per_txn() < report.off.bytes_per_txn(),
            "cache must cut NIC bytes per committed txn: {report:?}"
        );
        assert!(
            report.on.reads_per_txn() < report.off.reads_per_txn(),
            "cache must cut READ verbs per committed txn: {report:?}"
        );
        let mut sh = Shell::new();
        let text = sh.execute(Cmd::Cache { txns: 1 }).unwrap().unwrap();
        assert!(text.contains("NIC bytes per committed txn"), "{text}");
        assert!(text.contains("hit rate"), "{text}");
    }

    /// The PR's acceptance criterion: on a read-heavy cross-machine
    /// YCSB-B, 8 pipelined routines per worker slot must deliver at
    /// least 25% more virtual-time throughput than the blocking
    /// baseline, with the abort rate within 2x of it, because the
    /// scheduler overlaps independent routines' verb waits.
    #[test]
    fn pipeline_hides_remote_verb_latency() {
        let report = pipeline_ab(200);
        assert!(report.base.committed > 0 && report.piped.committed > 0);
        // The blocking side has one routine, so nothing can overlap.
        assert_eq!(report.base.overlap_ns, 0, "{report:?}");
        assert!(
            report.gain() >= 0.25,
            "pipelining must gain >= 25%, got {:.1}%: {report:?}",
            report.gain() * 100.0
        );
        // Aborts rise with 16 txns in flight (2 workers x 8 routines)
        // and the exact count varies with OS thread interleaving, so
        // bound the rate absolutely rather than relative to the
        // single-routine baseline.
        assert!(
            report.piped.abort_rate() <= 0.05,
            "pipelined abort rate must stay low: {report:?}"
        );
        assert!(
            report.piped.hiding_ratio() > 0.25,
            "most of the wait should overlap: {report:?}"
        );
        let mut sh = Shell::new();
        let text = sh.execute(Cmd::Pipeline { txns: 20 }).unwrap().unwrap();
        assert!(text.contains("virtual-time gain"), "{text}");
        assert!(text.contains("latency hidden"), "{text}");
    }

    /// The PR's acceptance criterion (DESIGN.md §15): on the
    /// 99%-zipfian read-modify-write YCSB-F, the full escalation
    /// ladder must deliver at least 15% more committed transactions
    /// per virtual second than rung-1 backoff alone, and it must
    /// actually have escalated — rung-2 pessimistic commits observed,
    /// none under `off`. The hot-account SmallBank side reports its
    /// own gain but is only asserted to escalate: at shell scale its
    /// run-to-run interleaving noise swamps any fixed threshold.
    #[test]
    fn contend_escalate_beats_backoff() {
        let report = contend_ab(1_000);
        assert!(report.ycsb.off.committed > 0 && report.ycsb.escalated.committed > 0);
        assert_eq!(
            report.ycsb.off.pessimistic + report.ycsb.off.parks,
            0,
            "policy off must never escalate: {report:?}"
        );
        assert!(
            report.ycsb.escalated.pessimistic > 0,
            "the hot head must trip rung 2: {report:?}"
        );
        assert!(
            report.ycsb.gain() >= 0.15,
            "escalate must gain >= 15% on zipfian ycsb, got {:.1}%: {report:?}",
            report.ycsb.gain() * 100.0
        );
        assert!(
            report.smallbank.escalated.pessimistic > 0,
            "hot accounts must trip rung 2: {report:?}"
        );
        let mut sh = Shell::new();
        let text = sh.execute(Cmd::Contend { txns: 20 }).unwrap().unwrap();
        assert!(text.contains("committed throughput gain"), "{text}");
        assert!(text.contains("pessimistic commits"), "{text}");
    }

    /// The serving tier's acceptance criterion, in-shell: a burst far
    /// past the admission high-water mark must shed load with fast
    /// rejects while admitted p99 stays bounded, the paced side must
    /// shed (nearly) nothing, and both sides must conserve money
    /// through the graceful drain.
    #[test]
    fn serve_sheds_overload_and_conserves() {
        let report = serve_ab(600).expect("serve A/B");
        assert_eq!(report.paced.sent, 600);
        assert_eq!(report.burst.sent, 600);
        assert!(report.paced.committed > 0 && report.burst.committed > 0);
        assert!(
            report.burst.rejected > 0,
            "a burst past high-water must shed: {report:?}"
        );
        assert!(
            report.paced.shed_rate() < 0.05,
            "paced load under capacity must (almost) never shed: {report:?}"
        );
        assert!(
            report.burst.p99_ns < 2_000_000_000,
            "admitted p99 unbounded under overload: {report:?}"
        );
        assert!(
            report.paced.conserved && report.burst.conserved,
            "conservation violated: {report:?}"
        );
        let mut sh = Shell::new();
        let text = sh.execute(Cmd::Serve { requests: 40 }).unwrap().unwrap();
        assert!(text.contains("goodput"), "{text}");
        assert!(text.contains("shed"), "{text}");
        assert!(text.contains("conservation: paced OK, burst OK"), "{text}");
    }

    #[test]
    fn parse_loadcurve_forms() {
        assert_eq!(
            parse("loadcurve").unwrap(),
            Some(Cmd::LoadCurve {
                rates: vec![200.0, 500.0, 1_000.0],
                requests: 200,
                out: None,
            })
        );
        assert_eq!(
            parse("loadcurve rates 800,100,400 requests 50 json /tmp/x.json").unwrap(),
            Some(Cmd::LoadCurve {
                rates: vec![800.0, 100.0, 400.0],
                requests: 50,
                out: Some("/tmp/x.json".into()),
            })
        );
        assert!(parse("loadcurve rates").is_err());
        assert!(parse("loadcurve rates 0").is_err());
        assert!(parse("loadcurve bogus 1").is_err());
    }

    /// The loadcurve tentpole end to end: one server, an ascending rate
    /// grid, live scrapes between points, and a stamped artifact whose
    /// offered rates are monotone and whose p99s came from the
    /// coordinated-omission-safe scheduled-arrival clock.
    #[test]
    fn loadcurve_sweeps_and_writes_stamped_artifact() {
        let path = std::env::temp_dir().join(format!("drtm-loadcurve-{}.json", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let mut sh = Shell::new();
        // Rates given out of order: the sweep must sort them.
        let text = sh
            .execute(Cmd::LoadCurve {
                rates: vec![4_000.0, 2_000.0],
                requests: 80,
                out: Some(path_str.clone()),
            })
            .unwrap()
            .unwrap();
        assert!(text.contains("latency vs offered load"), "{text}");
        assert!(text.contains("conservation: OK"), "{text}");

        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        drtm_obs::jsonlint::validate(&json).expect("artifact parses");
        // The shared stamp rode along.
        assert!(json.contains("\"stamp\":{\"git_rev\":\""), "{json}");
        assert!(json.contains("\"utc\":\""), "{json}");
        // Points are in ascending offered-rate order with percentiles.
        let offered: Vec<f64> = json
            .split("\"offered\":")
            .skip(1)
            .map(|t| {
                t.chars()
                    .take_while(|c| c.is_ascii_digit() || *c == '.')
                    .collect::<String>()
                    .parse()
                    .unwrap()
            })
            .collect();
        assert_eq!(offered, vec![2_000.0, 4_000.0]);
        assert!(json.contains("\"p999_us\":"), "{json}");
        assert!(json.contains("\"live_accepted\":"), "{json}");
        // The routing policy (off here) and steal count ride along.
        assert!(json.contains("\"route\":\"off\""), "{json}");
        assert!(json.contains("\"steals\":0"), "{json}");
    }

    /// The routing A/B end to end: the same single-home-heavy burst
    /// through the shared queue and the shard-affinity router. The
    /// routed side must dispatch mostly-local, conserve money, and
    /// commit the same work in strictly less virtual time (the CI job
    /// gates the 1.20x floor; here we assert routed > shared so the
    /// test stays robust at a small request count).
    #[test]
    fn route_ab_wins_on_virtual_time_and_writes_artifact() {
        let path = std::env::temp_dir().join(format!("drtm-route-{}.json", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let mut sh = Shell::new();
        let text = sh
            .execute(Cmd::Route {
                requests: 200,
                out: Some(path_str.clone()),
            })
            .unwrap()
            .unwrap();
        assert!(text.contains("shard-affinity routing A/B"), "{text}");
        assert!(
            text.contains("conservation: shared OK, routed OK"),
            "{text}"
        );
        assert!(text.contains("speedup:"), "{text}");

        let json = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        drtm_obs::jsonlint::validate(&json).expect("artifact parses");
        assert!(json.contains("\"stamp\":{\"git_rev\":\""), "{json}");
        assert!(json.contains("\"route\":\"off\""), "{json}");
        assert!(json.contains("\"route\":\"on\""), "{json}");
        assert!(json.contains("\"speedup\":"), "{json}");
        assert!(json.contains("\"steals\":"), "{json}");

        // Re-run through the library API for structural assertions.
        let report = route_ab(200).expect("route A/B");
        assert_eq!(report.shared.sent, 200);
        assert_eq!(report.routed.sent, 200);
        // High-water sits above the burst: nothing sheds on either side.
        assert_eq!(report.shared.rejected, 0, "{report:?}");
        assert_eq!(report.routed.rejected, 0, "{report:?}");
        // Only the routed side classifies dispatch; 5% cross-shard
        // means the overwhelming majority of requests are single-home.
        assert_eq!(report.shared.local + report.shared.remote, 0);
        assert_eq!(
            report.routed.local + report.routed.remote,
            report.routed.committed + report.routed.aborted
        );
        assert!(
            report.routed.local > report.routed.remote,
            "single-home-heavy load must dispatch mostly local: {report:?}"
        );
        assert!(report.shared.conserved && report.routed.conserved);
        assert!(
            report.speedup() > 1.0,
            "routed must beat shared on virtual time: {report:?}"
        );
    }

    #[test]
    fn trace_writes_valid_chrome_json() {
        let mut sh = Shell::new();
        sh.execute(Cmd::Cluster {
            nodes: 2,
            replicas: 1,
        })
        .unwrap();
        sh.execute(Cmd::Put {
            shard: 1,
            key: 3,
            value: 9,
        })
        .unwrap();
        let path = std::env::temp_dir().join(format!("drtm-trace-{}.json", std::process::id()));
        let path_str = path.to_str().unwrap().to_string();
        let out = sh
            .execute(Cmd::Trace {
                path: path_str.clone(),
            })
            .unwrap()
            .unwrap();
        assert!(out.contains("wrote"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        drtm_obs::jsonlint::validate(&json).expect("trace file must be valid JSON");
        assert!(json.contains("\"traceEvents\""), "{json}");
        // The cross-machine put above issued verbs and committed a txn.
        assert!(json.contains("txn_commit"), "{json}");
    }

    #[test]
    fn nic_delta_resets_between_stats() {
        let mut sh = Shell::new();
        sh.execute(Cmd::Cluster {
            nodes: 2,
            replicas: 1,
        })
        .unwrap();
        sh.execute(Cmd::Put {
            shard: 1,
            key: 1,
            value: 1,
        })
        .unwrap();
        let first = sh
            .execute(Cmd::Stats {
                format: StatsFormat::Text,
            })
            .unwrap()
            .unwrap();
        // Immediately re-scraping with no traffic in between: the delta
        // section must be all-zero while the totals persist.
        let second = sh
            .execute(Cmd::Stats {
                format: StatsFormat::Text,
            })
            .unwrap()
            .unwrap();
        let delta_of = |s: &str| {
            s.split("nic delta since last stats:")
                .nth(1)
                .unwrap()
                .to_string()
        };
        assert!(delta_of(&first).contains("atomics="), "{first}");
        for line in delta_of(&second).lines().filter(|l| l.contains("node")) {
            assert!(
                line.contains("reads=0") && line.contains("atomics=0"),
                "second delta should be zero: {line}"
            );
        }
    }
}
