//! `drtm-shell`: an interactive shell over a simulated DrTM+R cluster.
//!
//! ```text
//! drtm-shell                # interactive REPL on stdin
//! drtm-shell script.drtm    # run a command file, then exit
//! ```

use std::io::{BufRead, Write};

use drtm_cli::{parse, Shell};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut shell = Shell::new();
    drtm_base::shutdown::install();

    let interactive = args.is_empty();
    let reader: Box<dyn BufRead> = if let Some(path) = args.first() {
        match std::fs::File::open(path) {
            Ok(f) => Box::new(std::io::BufReader::new(f)),
            Err(e) => {
                eprintln!("cannot open {path}: {e}");
                std::process::exit(1);
            }
        }
    } else {
        println!("drtm-shell — type `help` for commands");
        Box::new(std::io::BufReader::new(std::io::stdin()))
    };

    for line in reader.lines() {
        if drtm_base::shutdown::requested() {
            break;
        }
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        if interactive {
            // The prompt appears *after* the previous output.
            print!("> ");
            let _ = std::io::stdout().flush();
        }
        match parse(&line) {
            Ok(None) => continue,
            Ok(Some(cmd)) => match shell.execute(cmd) {
                Ok(Some(out)) => println!("{out}"),
                Ok(None) => break,
                Err(e) => eprintln!("error: {e}"),
            },
            Err(e) => eprintln!("error: {e}"),
        }
    }

    // Graceful SIGINT/SIGTERM: surface a final scrape of whatever
    // cluster was live so an interrupted session still reports.
    if drtm_base::shutdown::requested() {
        if let Some(out) = shell.final_scrape() {
            eprintln!("drtm-shell: interrupted — final stats:");
            println!("{out}");
        }
    }
}
