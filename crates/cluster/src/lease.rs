//! FaRM-style leases for fast failure detection (§5.2).
//!
//! Every node continuously renews its lease; any peer observing an
//! expired lease *suspects* the node and triggers reconfiguration. The
//! paper sets leases to 10 ms and detects failures in about that time —
//! the "suspect" marker of Figure 20.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use drtm_rdma::NodeId;

/// Per-node lease expiry times, in microseconds since the board's epoch.
#[derive(Debug)]
pub struct LeaseBoard {
    start: Instant,
    expiry_us: Vec<AtomicU64>,
}

impl LeaseBoard {
    /// Creates a board for `n` nodes; all leases start expired until
    /// first renewal.
    pub fn new(n: usize) -> Self {
        Self {
            start: Instant::now(),
            expiry_us: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Microseconds since board creation.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Renews `node`'s lease for `duration_us` from now.
    pub fn renew(&self, node: NodeId, duration_us: u64) {
        let t = self.now_us() + duration_us;
        self.expiry_us[node].fetch_max(t, Ordering::Relaxed);
    }

    /// Whether `node`'s lease has expired.
    pub fn expired(&self, node: NodeId) -> bool {
        self.expiry_us[node].load(Ordering::Relaxed) <= self.now_us()
    }

    /// Kills `node`'s lease immediately (used by crash injection so
    /// detection latency is governed by the checking cadence, and by the
    /// node itself when leaving gracefully).
    pub fn revoke(&self, node: NodeId) {
        self.expiry_us[node].store(0, Ordering::Relaxed);
    }

    /// First member of `members` whose lease has expired, if any.
    pub fn first_expired<'a>(
        &self,
        members: impl IntoIterator<Item = &'a NodeId>,
    ) -> Option<NodeId> {
        members.into_iter().copied().find(|&n| self.expired(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_leases_are_expired() {
        let b = LeaseBoard::new(2);
        assert!(b.expired(0));
        assert!(b.expired(1));
    }

    #[test]
    fn renewal_extends() {
        let b = LeaseBoard::new(1);
        b.renew(0, 1_000_000);
        assert!(!b.expired(0));
    }

    #[test]
    fn expiry_after_duration() {
        let b = LeaseBoard::new(1);
        b.renew(0, 2_000); // 2 ms.
        assert!(!b.expired(0));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.expired(0));
    }

    #[test]
    fn revoke_is_immediate() {
        let b = LeaseBoard::new(1);
        b.renew(0, 10_000_000);
        b.revoke(0);
        assert!(b.expired(0));
    }

    #[test]
    fn first_expired_scans_members() {
        let b = LeaseBoard::new(3);
        b.renew(0, 1_000_000);
        b.renew(2, 1_000_000);
        let members = [0, 1, 2];
        assert_eq!(b.first_expired(members.iter()), Some(1));
        b.renew(1, 1_000_000);
        assert_eq!(b.first_expired(members.iter()), None);
    }

    #[test]
    fn renew_never_shortens() {
        let b = LeaseBoard::new(1);
        b.renew(0, 10_000_000);
        b.renew(0, 1_000); // A shorter renewal must not pull expiry in.
        std::thread::sleep(Duration::from_millis(3));
        assert!(!b.expired(0));
    }
}
