//! FaRM-style leases for fast failure detection (§5.2).
//!
//! Every node continuously renews its lease; any peer observing an
//! expired lease *suspects* the node and triggers reconfiguration. The
//! paper sets leases to 10 ms and detects failures in about that time —
//! the "suspect" marker of Figure 20.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use drtm_rdma::NodeId;

/// Per-node lease expiry times, in microseconds since the board's epoch.
#[derive(Debug)]
pub struct LeaseBoard {
    start: Instant,
    expiry_us: Vec<AtomicU64>,
}

impl LeaseBoard {
    /// Creates a board for `n` nodes; all leases start expired until
    /// first renewal.
    pub fn new(n: usize) -> Self {
        Self {
            start: Instant::now(),
            expiry_us: (0..n).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Microseconds since board creation.
    pub fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Renews `node`'s lease for `duration_us` from now.
    pub fn renew(&self, node: NodeId, duration_us: u64) {
        let t = self.now_us() + duration_us;
        self.expiry_us[node].fetch_max(t, Ordering::Relaxed);
        drtm_obs::trace::event(drtm_obs::EventKind::LeaseRenew, "", node as u64, 0);
    }

    /// Whether `node`'s lease has expired.
    pub fn expired(&self, node: NodeId) -> bool {
        self.expiry_us[node].load(Ordering::Relaxed) <= self.now_us()
    }

    /// Kills `node`'s lease immediately (used by crash injection so
    /// detection latency is governed by the checking cadence, and by the
    /// node itself when leaving gracefully).
    pub fn revoke(&self, node: NodeId) {
        self.expiry_us[node].store(0, Ordering::Relaxed);
        drtm_obs::trace::event(drtm_obs::EventKind::LeaseExpire, "revoked", node as u64, 0);
    }

    /// First member of `members` whose lease has expired, if any.
    pub fn first_expired<'a>(
        &self,
        members: impl IntoIterator<Item = &'a NodeId>,
    ) -> Option<NodeId> {
        members.into_iter().copied().find(|&n| self.expired(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn fresh_leases_are_expired() {
        let b = LeaseBoard::new(2);
        assert!(b.expired(0));
        assert!(b.expired(1));
    }

    #[test]
    fn renewal_extends() {
        let b = LeaseBoard::new(1);
        b.renew(0, 1_000_000);
        assert!(!b.expired(0));
    }

    #[test]
    fn expiry_after_duration() {
        let b = LeaseBoard::new(1);
        b.renew(0, 2_000); // 2 ms.
        assert!(!b.expired(0));
        std::thread::sleep(Duration::from_millis(5));
        assert!(b.expired(0));
    }

    #[test]
    fn revoke_is_immediate() {
        let b = LeaseBoard::new(1);
        b.renew(0, 10_000_000);
        b.revoke(0);
        assert!(b.expired(0));
    }

    #[test]
    fn first_expired_scans_members() {
        let b = LeaseBoard::new(3);
        b.renew(0, 1_000_000);
        b.renew(2, 1_000_000);
        let members = [0, 1, 2];
        assert_eq!(b.first_expired(members.iter()), Some(1));
        b.renew(1, 1_000_000);
        assert_eq!(b.first_expired(members.iter()), None);
    }

    #[test]
    fn renew_never_shortens() {
        let b = LeaseBoard::new(1);
        b.renew(0, 10_000_000);
        b.renew(0, 1_000); // A shorter renewal must not pull expiry in.
        std::thread::sleep(Duration::from_millis(3));
        assert!(!b.expired(0));
    }

    #[test]
    fn concurrent_renewers_never_lose_the_longest_lease() {
        // Many threads renew the same lease with different durations;
        // fetch_max means the longest grant must win regardless of the
        // interleaving, and the lease must never read expired while any
        // renewal is in flight.
        let b = std::sync::Arc::new(LeaseBoard::new(1));
        b.renew(0, 60_000_000);
        let threads: Vec<_> = (0..8)
            .map(|i| {
                let b = std::sync::Arc::clone(&b);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        b.renew(0, 1_000 + i * 137);
                        assert!(!b.expired(0), "lease lost under concurrent renewal");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // The initial 60 s grant is the max; short renewals cannot have
        // pulled it in.
        assert!(b.expiry_us[0].load(Ordering::Relaxed) >= 60_000_000);
    }

    #[test]
    fn revoke_races_with_renewers_but_stays_reacquirable() {
        // A revoke concurrent with renewals: whichever wins, the board
        // stays consistent — and once renewals stop, a fresh renew (the
        // node rejoining after recovery) re-acquires the lease.
        let b = std::sync::Arc::new(LeaseBoard::new(1));
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let renewer = {
            let b = std::sync::Arc::clone(&b);
            let stop = std::sync::Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    b.renew(0, 500);
                }
            })
        };
        for _ in 0..10_000 {
            b.revoke(0);
        }
        stop.store(true, Ordering::Relaxed);
        renewer.join().unwrap();
        // Heartbeats have stopped: the short outstanding grant drains.
        std::thread::sleep(Duration::from_millis(2));
        assert!(
            b.expired(0),
            "no renewer left; the last short grant drained"
        );
        // Rejoining is just renewing again.
        b.renew(0, 1_000_000);
        assert!(!b.expired(0), "a revoked lease must be re-acquirable");
    }
}
