//! Replication-log transport: durable redo queues on each backup.
//!
//! In the paper, a committing transaction writes redo records for every
//! updated record into non-volatile logs on the f backups (R.1) using
//! one-sided RDMA WRITEs, and backups truncate their logs with auxiliary
//! threads after full commit. Here each backup holds one durable queue
//! per primary. Appends charge the caller's virtual clock and both NICs
//! exactly like an RDMA WRITE of the serialised entry, so the replication
//! bandwidth bottleneck of Figures 15/16 is preserved; the queue itself
//! is host memory that survives a simulated crash (our "battery-backed
//! DRAM").

use drtm_base::sync::{Mutex, RwLock};
use drtm_base::{CostModel, LinkBudget, VClock};
use drtm_rdma::NodeId;

use crate::ConfigService;

/// One redo record: enough to replay an update during recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Table the record belongs to.
    pub table: u32,
    /// User key.
    pub key: u64,
    /// Sequence number the value carries after replay (always even: a
    /// replayed record is fully replicated by construction).
    pub seq: u64,
    /// The record value (empty for deletions).
    pub value: Vec<u8>,
    /// Whether this entry records a deletion rather than an update.
    pub delete: bool,
}

impl LogEntry {
    /// Serialised size on the wire (header + value).
    pub fn wire_size(&self) -> usize {
        4 + 8 + 8 + 8 + 1 + self.value.len()
    }
}

/// All replication logs of a cluster: `logs[backup][primary]` is the redo
/// queue that `primary` appends to on machine `backup`.
pub struct ReplLogStore {
    logs: Vec<Vec<Mutex<Vec<LogEntry>>>>,
    /// Recovery gate ordering appends against log drains. Appenders hold
    /// it shared for the duration of one transaction's R.1 (all queues);
    /// recovery write-acquires it once, *after* committing the new
    /// configuration and *before* draining the dead primary's logs.
    gate: RwLock<()>,
}

impl ReplLogStore {
    /// Creates empty logs for an `n`-node cluster.
    pub fn new(n: usize) -> Self {
        Self {
            logs: (0..n)
                .map(|_| (0..n).map(|_| Mutex::new(Vec::new())).collect())
                .collect(),
            gate: RwLock::new(()),
        }
    }

    /// Appends `entries` from `primary` to its log on `backup`, charging
    /// `clock` and the two NIC budgets like a single batched RDMA WRITE
    /// (the paper batches one log write per transaction per backup).
    pub fn append(
        &self,
        clock: &mut VClock,
        cost: &CostModel,
        nics: (&LinkBudget, &LinkBudget),
        primary: NodeId,
        backup: NodeId,
        entries: &[LogEntry],
    ) {
        let bytes: usize = entries.iter().map(LogEntry::wire_size).sum();
        let wire = cost.wire_bytes(bytes);
        let t1 = nics.0.reserve(clock.now(), wire);
        let t2 = if primary != backup {
            nics.1.reserve(clock.now(), wire)
        } else {
            t1
        };
        clock.advance(cost.rdma_write(bytes));
        clock.advance_to(t1.max(t2));
        self.logs[backup][primary].lock().extend_from_slice(entries);
    }

    /// Runs one transaction's R.1 appends atomically with respect to
    /// recovery (§5.2 fencing).
    ///
    /// `append_batches` runs with the recovery gate held shared, but only
    /// if the configuration epoch still equals `expected_epoch` — the
    /// epoch the appending transaction began under. Returns `false`
    /// (nothing appended) when the configuration moved.
    ///
    /// This closes the orphaned-append race: recovery bumps the epoch
    /// and then write-acquires the gate before draining a dead primary's
    /// logs, so an appender that observes the old epoch under the shared
    /// gate is guaranteed to finish *before* the drain (its entries get
    /// replayed), while one that would append *after* the drain observes
    /// the new epoch and is refused.
    pub fn append_fenced(
        &self,
        config: &ConfigService,
        expected_epoch: u64,
        append_batches: impl FnOnce(&Self),
    ) -> bool {
        let _gate = self.gate.read();
        if config.epoch() != expected_epoch {
            return false;
        }
        append_batches(self);
        true
    }

    /// Write-acquires (and releases) the recovery gate: every in-flight
    /// [`Self::append_fenced`] completes first, and every later one
    /// observes whatever configuration change preceded this call.
    pub fn quiesce_appends(&self) {
        drop(self.gate.write());
    }

    /// Truncates the oldest `n` entries of `primary`'s log on `backup`
    /// (the auxiliary threads' job; off the worker critical path).
    pub fn truncate(&self, backup: NodeId, primary: NodeId, n: usize) {
        let mut log = self.logs[backup][primary].lock();
        let n = n.min(log.len());
        log.drain(..n);
    }

    /// Number of unreclaimed entries `primary` has on `backup`.
    pub fn len(&self, backup: NodeId, primary: NodeId) -> usize {
        self.logs[backup][primary].lock().len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self, backup: NodeId, primary: NodeId) -> bool {
        self.len(backup, primary) == 0
    }

    /// Drains every entry `primary` ever logged on `backup` — the
    /// recovery path: survivors replay the dead primary's redo records.
    pub fn drain_for_recovery(&self, backup: NodeId, primary: NodeId) -> Vec<LogEntry> {
        std::mem::take(&mut *self.logs[backup][primary].lock())
    }

    /// Drains `primary`'s log on `backup`, running `apply` on each entry
    /// *while still holding the queue lock*. Entries are therefore never
    /// observable as "drained but not yet applied": anyone who sees the
    /// queue empty afterwards also sees every effect of `apply`. The
    /// auxiliary truncation threads and recovery both use this so a
    /// recovery snapshot racing a truncation step cannot miss entries.
    /// Returns the number of entries applied.
    pub fn drain_with(
        &self,
        backup: NodeId,
        primary: NodeId,
        mut apply: impl FnMut(&LogEntry),
    ) -> usize {
        let mut log = self.logs[backup][primary].lock();
        let n = log.len();
        for e in log.drain(..) {
            apply(&e);
        }
        n
    }

    /// Copies (without truncating) every unreclaimed entry `primary`
    /// has on `backup`. The dangling-lock healing path uses this to
    /// read durable redo state that the auxiliary threads have not yet
    /// folded into the backup images.
    pub fn peek(&self, backup: NodeId, primary: NodeId) -> Vec<LogEntry> {
        self.logs[backup][primary].lock().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: u64, seq: u64) -> LogEntry {
        LogEntry {
            table: 0,
            key,
            seq,
            value: vec![1, 2, 3],
            delete: false,
        }
    }

    fn nics() -> (LinkBudget, LinkBudget) {
        (LinkBudget::new(1e9), LinkBudget::new(1e9))
    }

    #[test]
    fn append_and_truncate() {
        let s = ReplLogStore::new(2);
        let cost = CostModel::default();
        let (a, b) = nics();
        let mut clock = VClock::new();
        s.append(
            &mut clock,
            &cost,
            (&a, &b),
            0,
            1,
            &[entry(1, 2), entry(2, 2)],
        );
        assert_eq!(s.len(1, 0), 2);
        s.truncate(1, 0, 1);
        assert_eq!(s.len(1, 0), 1);
        s.truncate(1, 0, 10);
        assert!(s.is_empty(1, 0));
    }

    #[test]
    fn append_charges_time_and_bandwidth() {
        let s = ReplLogStore::new(2);
        let cost = CostModel::default();
        let (a, b) = nics();
        let mut clock = VClock::new();
        s.append(&mut clock, &cost, (&a, &b), 0, 1, &[entry(1, 2)]);
        assert!(clock.now() > 0);
        assert!(a.granted() > 0 && b.granted() > 0);
    }

    #[test]
    fn recovery_drains_everything() {
        let s = ReplLogStore::new(3);
        let cost = CostModel::default();
        let (a, b) = nics();
        let mut clock = VClock::new();
        s.append(&mut clock, &cost, (&a, &b), 0, 2, &[entry(5, 4)]);
        s.append(&mut clock, &cost, (&a, &b), 1, 2, &[entry(6, 2)]);
        let got = s.drain_for_recovery(2, 0);
        assert_eq!(got, vec![entry(5, 4)]);
        assert!(s.is_empty(2, 0));
        assert_eq!(s.len(2, 1), 1, "other primaries' logs untouched");
    }

    #[test]
    fn wire_size_includes_value() {
        assert_eq!(entry(1, 2).wire_size(), 29 + 3);
    }
}
