//! Cluster membership, failure detection, and replication-log transport.
//!
//! DrTM+R runs over a cluster whose membership is agreed through
//! ZooKeeper and whose failures are detected with FaRM-style leases
//! (§3, §5.2). This crate provides those mechanics for the in-process
//! simulated cluster:
//!
//! * [`config`] — an epoch-numbered configuration service (the ZooKeeper
//!   stand-in): a linearizable register holding the current membership;
//!   reconfiguration commits a new epoch that every survivor observes.
//! * [`lease`] — per-node leases. A node's workers renew its lease; when
//!   a lease expires the node is *suspected* and reconfiguration starts.
//!   Leases run on host time, because the recovery experiment (Figure 20)
//!   is a wall-clock timeline rather than a throughput measurement.
//! * [`log`] — the replication log transport. The paper writes redo
//!   records into battery-backed memory on each backup with one-sided
//!   RDMA WRITEs and lets auxiliary threads truncate them. Here each
//!   backup holds a durable in-process queue per primary; appends charge
//!   the virtual-time NIC budgets of both endpoints exactly like an RDMA
//!   WRITE of the serialised entry, and the queue survives a simulated
//!   crash (crash = threads stop; memory — our "NVRAM" — persists).

pub mod config;
pub mod lease;
pub mod log;

pub use config::{ConfigService, Configuration};
pub use lease::LeaseBoard;
pub use log::{LogEntry, ReplLogStore};
