//! The epoch-numbered configuration service (ZooKeeper stand-in).
//!
//! The paper uses ZooKeeper only to "reach an agreement on the current
//! configuration among surviving machines" (§3); all data-path
//! coordination is RDMA. A linearizable in-process register with epoch
//! numbers is a faithful substitute.

use std::collections::BTreeSet;

use drtm_base::sync::RwLock;
use drtm_rdma::NodeId;

/// One committed cluster configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Configuration {
    /// Monotonically increasing configuration number (vertical-Paxos
    /// ballot).
    pub epoch: u64,
    /// Machines that are members of this configuration.
    pub members: BTreeSet<NodeId>,
}

impl Configuration {
    /// Whether `node` is a member.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }
}

/// The agreement service: a linearizable current-configuration register.
#[derive(Debug)]
pub struct ConfigService {
    current: RwLock<Configuration>,
}

impl ConfigService {
    /// Creates the service with an initial full membership `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            current: RwLock::new(Configuration {
                epoch: 1,
                members: (0..n).collect(),
            }),
        }
    }

    /// Returns the current configuration (cheap snapshot).
    pub fn get(&self) -> Configuration {
        self.current.read().clone()
    }

    /// Current epoch without cloning the member set.
    pub fn epoch(&self) -> u64 {
        self.current.read().epoch
    }

    /// Commits a new configuration that excludes `dead`, returning it.
    ///
    /// Idempotent: if `dead` is already excluded the configuration is
    /// returned unchanged (two survivors may race to report the same
    /// failure).
    pub fn remove_member(&self, dead: NodeId) -> Configuration {
        let mut cur = self.current.write();
        if cur.members.remove(&dead) {
            cur.epoch += 1;
        }
        cur.clone()
    }

    /// Commits a new configuration that re-admits `node` (a recovered or
    /// replacement machine).
    pub fn add_member(&self, node: NodeId) -> Configuration {
        let mut cur = self.current.write();
        if cur.members.insert(node) {
            cur.epoch += 1;
        }
        cur.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_membership() {
        let s = ConfigService::new(3);
        let c = s.get();
        assert_eq!(c.epoch, 1);
        assert!(c.contains(0) && c.contains(1) && c.contains(2));
        assert!(!c.contains(3));
    }

    #[test]
    fn remove_bumps_epoch_once() {
        let s = ConfigService::new(3);
        let c1 = s.remove_member(1);
        assert_eq!(c1.epoch, 2);
        assert!(!c1.contains(1));
        let c2 = s.remove_member(1);
        assert_eq!(c2.epoch, 2, "idempotent");
    }

    #[test]
    fn add_back_bumps_epoch() {
        let s = ConfigService::new(2);
        s.remove_member(0);
        let c = s.add_member(0);
        assert_eq!(c.epoch, 3);
        assert!(c.contains(0));
    }

    #[test]
    fn concurrent_removals_serialise() {
        use std::sync::Arc;
        let s = Arc::new(ConfigService::new(8));
        let mut handles = Vec::new();
        for dead in 1..5 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || s.remove_member(dead)));
        }
        for h in handles {
            h.join().unwrap();
        }
        let c = s.get();
        assert_eq!(c.epoch, 5, "four distinct removals, four epoch bumps");
        assert_eq!(c.members.len(), 4);
    }
}
