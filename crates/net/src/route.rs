//! Shard-affinity request router (DESIGN.md §16).
//!
//! Admission inspects a request's shard set — the wire protocol
//! already carries `shard` on every raw op and `a_shard`/`b_shard` on
//! SmallBank frames — and picks the **home pool**: the node owning the
//! majority of the touched shards, with ties broken toward the first
//! *written* shard (writes are where HTM-local commit beats remote
//! verbs hardest; a transaction homed with its writes pays C.1/C.5/C.6
//! only for the minority remainder). Requests whose whole shard set is
//! home execute as all-local HTM transactions with zero commit-path
//! verbs — the asymmetry the paper's speedup is built on.

/// Picks the home pool for a request touching `accesses` — a
/// `(shard, is_write)` list in execution order — on a cluster of
/// `nodes` nodes. Returns `(home, all_local)` where `all_local` is
/// true when every touched shard is owned by the home node.
///
/// Majority shard wins; a tie goes to the first write's shard (else
/// the first access). An empty access list homes on node 0. Shards are
/// clamped into the node range, mirroring how the executor resolves
/// out-of-range shard ids.
pub fn home_of(accesses: &[(usize, bool)], nodes: usize) -> (usize, bool) {
    let n = nodes.max(1);
    if accesses.is_empty() {
        return (0, true);
    }
    let mut counts = vec![0usize; n];
    for &(shard, _) in accesses {
        counts[shard % n] += 1;
    }
    let best = *counts.iter().max().expect("nodes >= 1");
    // Tiebreak: first write, else first access, provided it carries a
    // majority-sized count. Scanning in execution order keeps the pick
    // deterministic for any permutation of equal counts.
    let tiebreak = accesses
        .iter()
        .find(|&&(s, w)| w && counts[s % n] == best)
        .or_else(|| accesses.iter().find(|&&(s, _)| counts[s % n] == best))
        .map(|&(s, _)| s % n)
        .expect("some access holds the max count");
    let all_local = accesses.iter().all(|&(s, _)| s % n == tiebreak);
    (tiebreak, all_local)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_access_homes_on_its_shard() {
        assert_eq!(home_of(&[(2, false)], 4), (2, true));
        assert_eq!(home_of(&[(3, true)], 4), (3, true));
    }

    #[test]
    fn majority_shard_wins() {
        // Two reads on shard 1, one write on shard 0: majority beats
        // the write preference.
        assert_eq!(home_of(&[(0, true), (1, false), (1, false)], 4), (1, false));
    }

    #[test]
    fn tie_breaks_toward_first_writer() {
        // One read on shard 0 first, one write on shard 2: tied counts,
        // the write's shard wins even though it appears later.
        assert_eq!(home_of(&[(0, false), (2, true)], 4), (2, false));
        // All-read tie: first access wins.
        assert_eq!(home_of(&[(3, false), (1, false)], 4), (3, false));
    }

    #[test]
    fn smallbank_payment_homes_on_first_written_account() {
        // SendPayment writes `a` then `b`: tied counts, first writer →
        // a's shard.
        assert_eq!(home_of(&[(1, true), (0, true)], 2), (1, false));
        assert_eq!(home_of(&[(1, true), (1, true)], 2), (1, true));
    }

    #[test]
    fn out_of_range_shards_clamp_into_node_range() {
        assert_eq!(home_of(&[(5, true)], 2), (1, true));
        assert_eq!(home_of(&[(4, false), (6, false)], 2), (0, true));
    }

    #[test]
    fn empty_access_list_homes_on_zero() {
        assert_eq!(home_of(&[], 4), (0, true));
    }

    #[test]
    fn tiebreak_writer_must_hold_majority_count() {
        // Write on shard 2 (count 1) vs two reads on shard 1 (count 2):
        // the writer does NOT override a strict majority.
        assert_eq!(home_of(&[(2, true), (1, false), (1, false)], 4), (1, false));
    }
}
