//! Length-prefixed binary wire protocol (DESIGN.md §12).
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by the payload, whose first byte is a message tag. All
//! integers are little-endian; there is no padding and no alignment.
//! Frames above [`MAX_FRAME`] are rejected before allocation, so a
//! hostile length prefix cannot balloon server memory.
//!
//! The message set is deliberately tiny: the server greets each
//! connection with [`Msg::Hello`] (protocol version plus the SmallBank
//! topology the client needs to generate valid keys), the client sends
//! [`Msg::SmallBank`] or [`Msg::Raw`] requests tagged with a
//! client-chosen id, and the server answers each request with exactly
//! one [`Msg::Response`] echoing that id. Requests also carry the
//! client's *scheduled* arrival timestamp (`sched_ns`, client clock) so
//! the server side of a head-sampled request's trace can show the
//! open-loop intent, and any connection may ask the live telemetry
//! plane for a scrape with [`Msg::StatsRequest`], answered by one
//! [`Msg::StatsResponse`] carrying the rendered body.

use std::io::{self, Read, Write};

/// Protocol version carried in [`Msg::Hello`]. Bumped on any wire
/// change; clients refuse a mismatch. Version 2 added `sched_ns` on
/// requests and the stats scrape pair.
pub const PROTO_VERSION: u16 = 2;

/// Upper bound on a frame payload, enforced on both encode and decode.
pub const MAX_FRAME: usize = 1 << 20;

/// Request outcome carried in [`Msg::Response`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// The transaction committed.
    Committed,
    /// The transaction aborted (user abort or retries exhausted).
    Aborted,
    /// The request was shed by admission control — never executed.
    Rejected,
}

impl Status {
    fn code(self) -> u8 {
        match self {
            Status::Committed => 0,
            Status::Aborted => 1,
            Status::Rejected => 2,
        }
    }

    fn from_code(c: u8) -> Result<Self, WireError> {
        match c {
            0 => Ok(Status::Committed),
            1 => Ok(Status::Aborted),
            2 => Ok(Status::Rejected),
            _ => Err(WireError::BadValue("status")),
        }
    }
}

/// Rendering requested by a [`Msg::StatsRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrapeFormat {
    /// The full JSON snapshot (`drtm_obs::expo::render_json`).
    Json,
    /// Prometheus text exposition.
    Prom,
    /// The time-series ring of periodic samples, as JSON.
    Series,
}

impl ScrapeFormat {
    fn code(self) -> u8 {
        match self {
            ScrapeFormat::Json => 0,
            ScrapeFormat::Prom => 1,
            ScrapeFormat::Series => 2,
        }
    }

    fn from_code(c: u8) -> Result<Self, WireError> {
        match c {
            0 => Ok(ScrapeFormat::Json),
            1 => Ok(ScrapeFormat::Prom),
            2 => Ok(ScrapeFormat::Series),
            _ => Err(WireError::BadValue("scrape format")),
        }
    }
}

/// One operation of a [`Msg::Raw`] transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawOp {
    /// Read `key` of `table` homed on `shard`.
    Read {
        /// Home shard of the record.
        shard: u32,
        /// Table id.
        table: u32,
        /// Record key.
        key: u64,
    },
    /// Write `value` to `key` of `table` homed on `shard`.
    Write {
        /// Home shard of the record.
        shard: u32,
        /// Table id.
        table: u32,
        /// Record key.
        key: u64,
        /// Bytes to write (whole-record).
        value: Vec<u8>,
    },
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// Server → client greeting, sent once per connection.
    Hello {
        /// [`PROTO_VERSION`] of the server.
        version: u16,
        /// Machines in the cluster (valid shard ids are `0..nodes`).
        nodes: u32,
        /// SmallBank accounts per machine.
        accounts: u64,
    },
    /// Client → server: one SmallBank transaction.
    SmallBank {
        /// Client-chosen request id, echoed in the response.
        id: u64,
        /// Transaction type as an index into `SbTxn::ALL`.
        txn: u8,
        /// First account: home shard.
        a_shard: u32,
        /// First account: key.
        a_key: u64,
        /// Second account: shard (two-account types only).
        b_shard: u32,
        /// Second account: key.
        b_key: u64,
        /// Amount in cents.
        amount: u64,
        /// Scheduled arrival, ns on the client's open-loop clock
        /// (0 = unscheduled). Traced requests surface it in the span
        /// tree; latency accounting against it is coordinated-omission
        /// safe.
        sched_ns: u64,
    },
    /// Client → server: an explicit read/write transaction.
    Raw {
        /// Client-chosen request id, echoed in the response.
        id: u64,
        /// Scheduled arrival, ns on the client's open-loop clock
        /// (0 = unscheduled).
        sched_ns: u64,
        /// Operations executed in order inside one transaction.
        ops: Vec<RawOp>,
    },
    /// Server → client: outcome of the request with the same `id`.
    Response {
        /// Echo of the request id.
        id: u64,
        /// Outcome.
        status: Status,
        /// Microseconds the request waited in the admission queue
        /// (host time; 0 for rejected requests).
        queue_us: u32,
    },
    /// Client → server: scrape the live telemetry plane. Answered out
    /// of band with the engine — a scrape never touches the admission
    /// queue or the engine counters.
    StatsRequest {
        /// Requested rendering.
        format: ScrapeFormat,
    },
    /// Server → client: one rendered scrape.
    StatsResponse {
        /// Echo of the requested rendering.
        format: ScrapeFormat,
        /// Rendered bytes (UTF-8: JSON or Prometheus text).
        body: Vec<u8>,
    },
}

/// Decode/transport failure.
#[derive(Debug)]
pub enum WireError {
    /// Payload ended before the advertised structure did.
    Truncated,
    /// Length prefix exceeds [`MAX_FRAME`].
    Oversized(usize),
    /// Unknown message tag.
    BadTag(u8),
    /// Payload has bytes left over after a complete message.
    Trailing,
    /// A field held an out-of-range value (named for diagnostics).
    BadValue(&'static str),
    /// Underlying socket error.
    Io(io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::Oversized(n) => write!(f, "frame of {n} bytes exceeds {MAX_FRAME}"),
            WireError::BadTag(t) => write!(f, "unknown message tag {t}"),
            WireError::Trailing => write!(f, "trailing bytes after message"),
            WireError::BadValue(which) => write!(f, "out-of-range {which}"),
            WireError::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.buf.len() - self.at < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn done(&self) -> Result<(), WireError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Trailing)
        }
    }
}

/// Encodes `msg` as a complete frame (length prefix included).
pub fn encode(msg: &Msg) -> Vec<u8> {
    let mut p = Vec::with_capacity(64);
    match msg {
        Msg::Hello {
            version,
            nodes,
            accounts,
        } => {
            p.push(0);
            p.extend_from_slice(&version.to_le_bytes());
            p.extend_from_slice(&nodes.to_le_bytes());
            p.extend_from_slice(&accounts.to_le_bytes());
        }
        Msg::SmallBank {
            id,
            txn,
            a_shard,
            a_key,
            b_shard,
            b_key,
            amount,
            sched_ns,
        } => {
            p.push(1);
            p.extend_from_slice(&id.to_le_bytes());
            p.push(*txn);
            p.extend_from_slice(&a_shard.to_le_bytes());
            p.extend_from_slice(&a_key.to_le_bytes());
            p.extend_from_slice(&b_shard.to_le_bytes());
            p.extend_from_slice(&b_key.to_le_bytes());
            p.extend_from_slice(&amount.to_le_bytes());
            p.extend_from_slice(&sched_ns.to_le_bytes());
        }
        Msg::Raw { id, sched_ns, ops } => {
            p.push(2);
            p.extend_from_slice(&id.to_le_bytes());
            p.extend_from_slice(&sched_ns.to_le_bytes());
            p.extend_from_slice(&(ops.len() as u16).to_le_bytes());
            for op in ops {
                match op {
                    RawOp::Read { shard, table, key } => {
                        p.push(0);
                        p.extend_from_slice(&shard.to_le_bytes());
                        p.extend_from_slice(&table.to_le_bytes());
                        p.extend_from_slice(&key.to_le_bytes());
                    }
                    RawOp::Write {
                        shard,
                        table,
                        key,
                        value,
                    } => {
                        p.push(1);
                        p.extend_from_slice(&shard.to_le_bytes());
                        p.extend_from_slice(&table.to_le_bytes());
                        p.extend_from_slice(&key.to_le_bytes());
                        p.extend_from_slice(&(value.len() as u32).to_le_bytes());
                        p.extend_from_slice(value);
                    }
                }
            }
        }
        Msg::Response {
            id,
            status,
            queue_us,
        } => {
            p.push(3);
            p.extend_from_slice(&id.to_le_bytes());
            p.push(status.code());
            p.extend_from_slice(&queue_us.to_le_bytes());
        }
        Msg::StatsRequest { format } => {
            p.push(4);
            p.push(format.code());
        }
        Msg::StatsResponse { format, body } => {
            p.push(5);
            p.push(format.code());
            p.extend_from_slice(&(body.len() as u32).to_le_bytes());
            p.extend_from_slice(body);
        }
    }
    assert!(p.len() <= MAX_FRAME, "outbound frame exceeds MAX_FRAME");
    let mut f = Vec::with_capacity(4 + p.len());
    f.extend_from_slice(&(p.len() as u32).to_le_bytes());
    f.extend_from_slice(&p);
    f
}

/// Decodes one frame *payload* (length prefix already stripped).
pub fn decode_payload(buf: &[u8]) -> Result<Msg, WireError> {
    if buf.len() > MAX_FRAME {
        return Err(WireError::Oversized(buf.len()));
    }
    let mut c = Cursor { buf, at: 0 };
    let msg = match c.u8()? {
        0 => Msg::Hello {
            version: c.u16()?,
            nodes: c.u32()?,
            accounts: c.u64()?,
        },
        1 => Msg::SmallBank {
            id: c.u64()?,
            txn: {
                let t = c.u8()?;
                if t >= 6 {
                    return Err(WireError::BadValue("smallbank txn type"));
                }
                t
            },
            a_shard: c.u32()?,
            a_key: c.u64()?,
            b_shard: c.u32()?,
            b_key: c.u64()?,
            amount: c.u64()?,
            sched_ns: c.u64()?,
        },
        2 => {
            let id = c.u64()?;
            let sched_ns = c.u64()?;
            let n = c.u16()? as usize;
            let mut ops = Vec::with_capacity(n.min(256));
            for _ in 0..n {
                ops.push(match c.u8()? {
                    0 => RawOp::Read {
                        shard: c.u32()?,
                        table: c.u32()?,
                        key: c.u64()?,
                    },
                    1 => {
                        let (shard, table, key) = (c.u32()?, c.u32()?, c.u64()?);
                        let len = c.u32()? as usize;
                        RawOp::Write {
                            shard,
                            table,
                            key,
                            value: c.take(len)?.to_vec(),
                        }
                    }
                    _ => return Err(WireError::BadValue("raw op")),
                });
            }
            Msg::Raw { id, sched_ns, ops }
        }
        3 => Msg::Response {
            id: c.u64()?,
            status: Status::from_code(c.u8()?)?,
            queue_us: c.u32()?,
        },
        4 => Msg::StatsRequest {
            format: ScrapeFormat::from_code(c.u8()?)?,
        },
        5 => {
            let format = ScrapeFormat::from_code(c.u8()?)?;
            let len = c.u32()? as usize;
            Msg::StatsResponse {
                format,
                body: c.take(len)?.to_vec(),
            }
        }
        t => return Err(WireError::BadTag(t)),
    };
    c.done()?;
    Ok(msg)
}

/// Reads one framed message from `r`. Returns `Ok(None)` on a clean
/// EOF *between* frames; EOF mid-frame is [`WireError::Truncated`].
pub fn read_msg(r: &mut impl Read) -> Result<Option<Msg>, WireError> {
    let mut len = [0u8; 4];
    match r.read(&mut len[..1]) {
        Ok(0) => return Ok(None),
        Ok(_) => {}
        Err(e) => return Err(WireError::Io(e)),
    }
    r.read_exact(&mut len[1..]).map_err(eof_as_truncated)?;
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(WireError::Oversized(n));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload).map_err(eof_as_truncated)?;
    decode_payload(&payload).map(Some)
}

fn eof_as_truncated(e: io::Error) -> WireError {
    if e.kind() == io::ErrorKind::UnexpectedEof {
        WireError::Truncated
    } else {
        WireError::Io(e)
    }
}

/// Writes one framed message to `w` (no flush).
pub fn write_msg(w: &mut impl Write, msg: &Msg) -> io::Result<()> {
    w.write_all(&encode(msg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use drtm_base::SplitMix64;

    fn arb_msg(rng: &mut SplitMix64) -> Msg {
        match rng.below(6) {
            0 => Msg::Hello {
                version: rng.next_u64() as u16,
                nodes: rng.below(1 << 16) as u32,
                accounts: rng.next_u64(),
            },
            1 => Msg::SmallBank {
                id: rng.next_u64(),
                txn: rng.below(6) as u8,
                a_shard: rng.below(64) as u32,
                a_key: rng.next_u64(),
                b_shard: rng.below(64) as u32,
                b_key: rng.next_u64(),
                amount: rng.below(1 << 20),
                sched_ns: rng.next_u64(),
            },
            2 => {
                let n = rng.below(8) as usize;
                let ops = (0..n)
                    .map(|_| {
                        if rng.chance(0.5) {
                            RawOp::Read {
                                shard: rng.below(8) as u32,
                                table: rng.below(4) as u32,
                                key: rng.next_u64(),
                            }
                        } else {
                            let len = rng.below(64) as usize;
                            RawOp::Write {
                                shard: rng.below(8) as u32,
                                table: rng.below(4) as u32,
                                key: rng.next_u64(),
                                value: (0..len).map(|_| rng.next_u64() as u8).collect(),
                            }
                        }
                    })
                    .collect();
                Msg::Raw {
                    id: rng.next_u64(),
                    sched_ns: rng.next_u64(),
                    ops,
                }
            }
            3 => Msg::Response {
                id: rng.next_u64(),
                status: [Status::Committed, Status::Aborted, Status::Rejected]
                    [rng.below(3) as usize],
                queue_us: rng.next_u64() as u32,
            },
            4 => Msg::StatsRequest {
                format: [ScrapeFormat::Json, ScrapeFormat::Prom, ScrapeFormat::Series]
                    [rng.below(3) as usize],
            },
            _ => {
                let len = rng.below(256) as usize;
                Msg::StatsResponse {
                    format: [ScrapeFormat::Json, ScrapeFormat::Prom, ScrapeFormat::Series]
                        [rng.below(3) as usize],
                    body: (0..len).map(|_| rng.next_u64() as u8).collect(),
                }
            }
        }
    }

    /// Property: every message round-trips through encode/decode, both
    /// payload-level and through the framed reader.
    #[test]
    fn roundtrip_property() {
        let mut rng = SplitMix64::new(0xD127);
        for _ in 0..2_000 {
            let m = arb_msg(&mut rng);
            let f = encode(&m);
            assert_eq!(
                decode_payload(&f[4..]).unwrap(),
                m,
                "payload roundtrip of {m:?}"
            );
            let mut r = &f[..];
            assert_eq!(read_msg(&mut r).unwrap(), Some(m));
        }
    }

    /// Property: every strict prefix of a valid frame decodes to
    /// `Truncated` (or a clean `None` for the empty prefix) — never a
    /// panic, never a wrong message.
    #[test]
    fn truncated_prefix_property() {
        let mut rng = SplitMix64::new(0xFEED);
        for _ in 0..300 {
            let m = arb_msg(&mut rng);
            let f = encode(&m);
            for cut in 0..f.len() {
                let mut r = &f[..cut];
                match read_msg(&mut r) {
                    Ok(None) if cut == 0 => {}
                    Err(WireError::Truncated) => {}
                    other => panic!("prefix {cut}/{} of {m:?} gave {other:?}", f.len()),
                }
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut f = Vec::new();
        f.extend_from_slice(&(u32::MAX).to_le_bytes());
        f.push(0);
        let mut r = &f[..];
        match read_msg(&mut r) {
            Err(WireError::Oversized(n)) => assert_eq!(n, u32::MAX as usize),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }

    #[test]
    fn bad_tag_and_trailing_bytes_are_rejected() {
        assert!(matches!(decode_payload(&[9]), Err(WireError::BadTag(9))));
        let mut f = encode(&Msg::Response {
            id: 1,
            status: Status::Committed,
            queue_us: 0,
        });
        f.push(0xAA); // Payload byte beyond the message.
        let bad = decode_payload(&f[4..]);
        assert!(matches!(bad, Err(WireError::Trailing)), "{bad:?}");
        assert!(matches!(decode_payload(&[]), Err(WireError::Truncated)));
    }

    #[test]
    fn out_of_range_fields_are_rejected() {
        let mut f = encode(&Msg::SmallBank {
            id: 7,
            txn: 0,
            a_shard: 0,
            a_key: 0,
            b_shard: 0,
            b_key: 0,
            amount: 0,
            sched_ns: 0,
        });
        f[4 + 1 + 8] = 6; // txn type past SbTxn::ALL
        assert!(matches!(
            decode_payload(&f[4..]),
            Err(WireError::BadValue("smallbank txn type"))
        ));
        let mut f = encode(&Msg::Response {
            id: 7,
            status: Status::Rejected,
            queue_us: 1,
        });
        f[4 + 1 + 8] = 3; // status code past Rejected
        assert!(matches!(
            decode_payload(&f[4..]),
            Err(WireError::BadValue("status"))
        ));
        let mut f = encode(&Msg::StatsRequest {
            format: ScrapeFormat::Json,
        });
        f[4 + 1] = 3; // scrape format past Series
        assert!(matches!(
            decode_payload(&f[4..]),
            Err(WireError::BadValue("scrape format"))
        ));
    }

    #[test]
    fn stats_response_body_round_trips_text() {
        let body = b"drtm_txn_committed_total 42\n".to_vec();
        let m = Msg::StatsResponse {
            format: ScrapeFormat::Prom,
            body: body.clone(),
        };
        let f = encode(&m);
        match decode_payload(&f[4..]).unwrap() {
            Msg::StatsResponse { format, body: b } => {
                assert_eq!(format, ScrapeFormat::Prom);
                assert_eq!(b, body);
            }
            other => panic!("{other:?}"),
        }
    }
}
