//! `drtm-net` — the TCP serving front-end of the DrTM+R repro
//! (DESIGN.md §12).
//!
//! Everything upstream of this crate measures the engine closed-loop:
//! the bench driver generates its own transactions in-process, so the
//! repro can report peak throughput but nothing about behaviour *past
//! saturation* — the regime a real serving system lives in. This crate
//! adds the missing front door:
//!
//! * [`proto`] — a tiny length-prefixed binary protocol (request =
//!   SmallBank op or raw read/write txn; response = committed /
//!   aborted / rejected plus queue wait);
//! * [`server`] — a TCP server fronting the engine with a bounded
//!   admission queue ([`drtm_core::SubmitQueue`]) feeding per-node
//!   routine pools, per-connection in-flight windows (backpressure via
//!   TCP flow control), and explicit load shedding past the queue's
//!   high-water mark;
//! * [`loadgen`] — an **open-loop** client: seeded Poisson arrivals at
//!   a configured offered rate, latency measured from the scheduled
//!   arrival time so server-imposed queueing is never coordinated away;
//! * [`route`] — the shard-affinity router (DESIGN.md §16): with
//!   `--route on` the server dispatches each request to the pool owning
//!   the majority of its shards (first-writer tiebreak), backed by
//!   per-pool queues with bounded work stealing, so single-home
//!   requests commit all-local in HTM with zero commit-path verbs.
//!
//! Serving counters (conns, accepted, rejected, in-flight, queue depth,
//! queue-wait histogram) surface through `drtm-obs` as the `net`
//! section of every exposition format; routing counters (local/remote
//! dispatch, steals, two-level sheds, per-pool depths) as the `route`
//! section.

#![deny(missing_docs)]

pub mod loadgen;
pub mod proto;
pub mod route;
pub mod server;

pub use loadgen::{run_client, scrape, ClientCfg, ClientReport, Schedule};
pub use proto::{Msg, RawOp, ScrapeFormat, Status, WireError, MAX_FRAME, PROTO_VERSION};
pub use server::{Drained, Server, ServerCfg};
