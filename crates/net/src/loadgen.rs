//! Open-loop load generation.
//!
//! A closed-loop client (send, wait for the reply, send again) can
//! never drive a server past saturation: its own waiting throttles the
//! offered load, and measured latency silently excludes the queueing
//! the server imposed — the classic *coordinated omission* trap. This
//! module generates an **open-loop** arrival process instead: request
//! send times are drawn up front from a seeded Poisson process at the
//! configured offered rate, the sender dispatches at those wall-clock
//! times regardless of outstanding replies, and per-request latency is
//! measured from the *scheduled* arrival — a request the server made
//! wait in the socket still pays that wait in the histogram.
//!
//! The schedule is a pure function of `(seed, rate, n)`, so a run is
//! reproducible end to end (same arrivals, same SmallBank inputs).

use std::collections::HashMap;
use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use drtm_base::stats::{Counter, Histogram};
use drtm_base::sync::Mutex;
use drtm_base::SplitMix64;
use drtm_obs::trace::{self, EventKind};
use drtm_workloads::smallbank::{SbCfg, SbTxn};

use crate::proto::{self, Msg, Status, PROTO_VERSION};

/// A precomputed arrival schedule: send offsets from the run start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// Nanosecond offsets, non-decreasing, one per request.
    pub offsets_ns: Vec<u64>,
}

impl Schedule {
    /// Poisson arrivals at `rate_per_sec` (> 0): exponential
    /// inter-arrival gaps `-ln(u)/rate` drawn from a [`SplitMix64`]
    /// seeded with `seed`. Same `(seed, rate, n)` → identical schedule.
    pub fn poisson(seed: u64, rate_per_sec: f64, n: usize) -> Self {
        assert!(rate_per_sec > 0.0, "offered rate must be positive");
        let mut rng = SplitMix64::new(seed);
        let mut at = 0.0f64;
        let offsets_ns = (0..n)
            .map(|_| {
                // Uniform in (0, 1]: never ln(0).
                let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
                at += -u.ln() / rate_per_sec * 1e9;
                at as u64
            })
            .collect();
        Self { offsets_ns }
    }

    /// All-at-once burst: every request scheduled at t=0. The tightest
    /// possible overload probe (offered rate ≈ ∞).
    pub fn burst(n: usize) -> Self {
        Self {
            offsets_ns: vec![0; n],
        }
    }
}

/// Client configuration.
#[derive(Debug, Clone)]
pub struct ClientCfg {
    /// Server address, e.g. `127.0.0.1:7070`.
    pub addr: String,
    /// Offered load in requests/second; `0.0` means an all-at-once
    /// burst.
    pub rate: f64,
    /// Total requests to send.
    pub requests: usize,
    /// RNG seed (arrival schedule *and* SmallBank inputs).
    pub seed: u64,
    /// Connections to stripe requests over (round-robin).
    pub conns: usize,
    /// Restrict the mix to send-payment + balance, which is zero-sum
    /// over checking totals — lets the server audit conservation.
    pub zero_sum: bool,
    /// Probability a two-account transaction crosses machines.
    pub cross_prob: f64,
    /// Zipfian skew θ over *home shard* selection: `0.0` keeps today's
    /// uniform pick; higher values concentrate offered load on a few
    /// shards, exercising the routed dispatcher's steal path. Seeded
    /// with the run's seed, so a skewed run reproduces exactly.
    pub shard_skew: f64,
}

impl Default for ClientCfg {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7070".into(),
            rate: 10_000.0,
            requests: 10_000,
            seed: 1,
            conns: 4,
            zero_sum: false,
            cross_prob: 0.1,
            shard_skew: 0.0,
        }
    }
}

/// Outcome of one open-loop run.
#[derive(Debug)]
pub struct ClientReport {
    /// Requests sent.
    pub sent: u64,
    /// Requests that committed.
    pub committed: u64,
    /// Requests that aborted.
    pub aborted: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Wall latency of *admitted* requests (committed + aborted),
    /// measured from the scheduled arrival time, ns.
    pub latency: Histogram,
    /// Wall-clock duration of the run, first send to last reply, ns.
    pub elapsed_ns: u64,
    /// Committed requests per wall second.
    pub goodput: f64,
    /// The home-shard zipfian θ this run offered (0 = uniform),
    /// stamped so a skewed artifact is self-describing.
    pub shard_skew: f64,
}

impl ClientReport {
    /// Renders the report as one JSON object (hand-built, no deps).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"sent\":{},\"committed\":{},\"aborted\":{},\"rejected\":{},\
             \"goodput\":{:.1},\"elapsed_ms\":{:.1},\"shard_skew\":{:.2},\
             \"latency_us\":{{\"mean\":{:.1},\"p50\":{:.1},\"p99\":{:.1},\"p999\":{:.1},\
             \"max\":{:.1}}}}}",
            self.sent,
            self.committed,
            self.aborted,
            self.rejected,
            self.goodput,
            self.elapsed_ns as f64 / 1e6,
            self.shard_skew,
            self.latency.mean() / 1e3,
            self.latency.quantile(0.5) as f64 / 1e3,
            self.latency.quantile(0.99) as f64 / 1e3,
            self.latency.quantile(0.999) as f64 / 1e3,
            self.latency.max() as f64 / 1e3,
        )
    }
}

struct ConnShared {
    /// Request id → scheduled arrival instant, inserted by the sender
    /// before the frame hits the socket, removed by the reader.
    pending: Mutex<HashMap<u64, Instant>>,
}

/// Drives one open-loop run against a server and collects the report.
pub fn run_client(cfg: &ClientCfg) -> Result<ClientReport, proto::WireError> {
    assert!(cfg.conns >= 1, "need at least one connection");
    let schedule = if cfg.rate > 0.0 {
        Schedule::poisson(cfg.seed, cfg.rate, cfg.requests)
    } else {
        Schedule::burst(cfg.requests)
    };

    // Connect and learn the topology from the Hello.
    let mut streams = Vec::with_capacity(cfg.conns);
    let mut sb = SbCfg::default();
    for _ in 0..cfg.conns {
        let mut s = TcpStream::connect(&cfg.addr)?;
        s.set_nodelay(true)?;
        match proto::read_msg(&mut s)? {
            Some(Msg::Hello {
                version,
                nodes,
                accounts,
            }) => {
                if version != PROTO_VERSION {
                    return Err(proto::WireError::BadValue("protocol version"));
                }
                sb.nodes = nodes as usize;
                sb.accounts = accounts as usize;
            }
            _ => return Err(proto::WireError::BadValue("greeting")),
        }
        streams.push(s);
    }
    sb.cross_prob = cfg.cross_prob;

    let committed = Counter::new();
    let aborted = Counter::new();
    let rejected = Counter::new();
    let latency = Histogram::new();
    let shared: Vec<Arc<ConnShared>> = (0..cfg.conns)
        .map(|_| {
            Arc::new(ConnShared {
                pending: Mutex::new(HashMap::new()),
            })
        })
        .collect();

    let start = Instant::now();
    let sent = std::thread::scope(|scope| -> Result<u64, proto::WireError> {
        // One reader per connection: match responses to their scheduled
        // send instants and record wall latency.
        let readers: Vec<_> = streams
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut r = s.try_clone().expect("clone stream");
                let shared = Arc::clone(&shared[i]);
                let (committed, aborted, rejected, latency) =
                    (&committed, &aborted, &rejected, &latency);
                scope.spawn(move || {
                    while let Ok(Some(msg)) = proto::read_msg(&mut r) {
                        if let Msg::Response { id, status, .. } = msg {
                            let sched_at = shared.pending.lock().remove(&id);
                            match status {
                                Status::Committed => committed.inc(),
                                Status::Aborted => aborted.inc(),
                                Status::Rejected => rejected.inc(),
                            }
                            let tr = trace::trace_for(id);
                            if tr != 0 {
                                trace::span_end(EventKind::Net, "client", tr, 0);
                                // Sheds terminate server-side; the
                                // reject path already ended the flow.
                                if status != Status::Rejected {
                                    trace::flow_end(tr, 0);
                                }
                            }
                            if status != Status::Rejected {
                                if let Some(at) = sched_at {
                                    latency.record(at.elapsed().as_nanos() as u64);
                                }
                            }
                        }
                    }
                })
            })
            .collect();

        // The open-loop sender: dispatch each request at its scheduled
        // offset, never waiting for replies.
        let mut rng = SplitMix64::new(cfg.seed ^ 0x5EED_CAFE);
        // Home-shard skew: a zipfian over nodes, seeded with the run —
        // a skewed offered load concentrates on a few home pools,
        // which is exactly what exercises the routed steal path.
        let zipf = (cfg.shard_skew > 0.0)
            .then(|| drtm_workloads::ycsb::Zipf::new(sb.nodes as u64, cfg.shard_skew));
        let mut sent = 0u64;
        for (i, &off) in schedule.offsets_ns.iter().enumerate() {
            let due = start + Duration::from_nanos(off);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            let id = i as u64;
            let conn = i % cfg.conns;
            let home = match &zipf {
                Some(z) => z.sample(&mut rng) as usize,
                None => rng.below(sb.nodes as u64) as usize,
            };
            let msg = gen_request(&sb, &mut rng, id, off, cfg.zero_sum, home);
            // Latency clock starts at the *scheduled* time: if this
            // send itself lagged (socket backpressure), the request
            // pays for it.
            shared[conn].pending.lock().insert(id, due);
            let tr = trace::trace_for(id);
            if tr != 0 {
                trace::span_begin(EventKind::Net, "client", tr, 0);
                trace::flow_start(tr, 0);
            }
            proto::write_msg(&mut &streams[conn], &msg)?;
            sent += 1;
        }
        for s in &streams {
            let _ = (&mut &*s).flush();
            let _ = s.shutdown(std::net::Shutdown::Write);
        }
        drop(readers); // scope joins them: all responses (or EOF) seen
        Ok(sent)
    })?;

    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let goodput = committed.get() as f64 / (elapsed_ns as f64 / 1e9);
    Ok(ClientReport {
        sent,
        committed: committed.get(),
        aborted: aborted.get(),
        rejected: rejected.get(),
        latency,
        elapsed_ns,
        goodput,
        shard_skew: cfg.shard_skew,
    })
}

/// Scrapes a live server once: opens a fresh connection, swallows the
/// greeting, sends one [`Msg::StatsRequest`] and returns the rendered
/// body. This is the client side of the live telemetry plane — the
/// scrape shares the drain snapshot's rendering path server-side, so
/// cumulative counters read here are comparable with the final drain.
pub fn scrape(addr: &str, format: proto::ScrapeFormat) -> Result<Vec<u8>, proto::WireError> {
    let mut s = TcpStream::connect(addr)?;
    s.set_nodelay(true)?;
    match proto::read_msg(&mut s)? {
        Some(Msg::Hello { version, .. }) if version == PROTO_VERSION => {}
        _ => return Err(proto::WireError::BadValue("greeting")),
    }
    proto::write_msg(&mut s, &Msg::StatsRequest { format })?;
    match proto::read_msg(&mut s)? {
        Some(Msg::StatsResponse { format: f, body }) if f == format => Ok(body),
        _ => Err(proto::WireError::BadValue("stats response")),
    }
}

/// Generates one SmallBank request on `home`. `zero_sum` restricts the
/// mix to send-payment (75%) + balance (25%), which conserves the
/// checking total so the server can audit conservation after a run.
fn gen_request(
    sb: &SbCfg,
    rng: &mut SplitMix64,
    id: u64,
    sched_ns: u64,
    zero_sum: bool,
    home: usize,
) -> Msg {
    let mut inp = drtm_workloads::smallbank::gen(sb, rng, home);
    if zero_sum {
        inp.txn = if rng.chance(0.25) {
            SbTxn::Balance
        } else {
            SbTxn::SendPayment
        };
    }
    let txn = SbTxn::ALL.iter().position(|t| *t == inp.txn).unwrap() as u8;
    Msg::SmallBank {
        id,
        txn,
        a_shard: inp.a.0 as u32,
        a_key: inp.a.1,
        b_shard: inp.b.0 as u32,
        b_key: inp.b.1,
        amount: inp.amount,
        sched_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Satellite: open-loop determinism — same seed + rate → the
    /// identical arrival schedule, different seed or rate → different.
    #[test]
    fn poisson_schedule_is_deterministic() {
        let a = Schedule::poisson(42, 50_000.0, 4_096);
        let b = Schedule::poisson(42, 50_000.0, 4_096);
        assert_eq!(a, b, "same seed+rate must reproduce exactly");
        let c = Schedule::poisson(43, 50_000.0, 4_096);
        assert_ne!(a, c, "a different seed must differ");
        let d = Schedule::poisson(42, 25_000.0, 4_096);
        assert_ne!(a, d, "a different rate must differ");
    }

    #[test]
    fn poisson_mean_rate_matches_offered() {
        let rate = 100_000.0;
        let n = 50_000;
        let s = Schedule::poisson(7, rate, n);
        assert!(s.offsets_ns.windows(2).all(|w| w[0] <= w[1]));
        let span_s = *s.offsets_ns.last().unwrap() as f64 / 1e9;
        let achieved = n as f64 / span_s;
        assert!(
            (achieved - rate).abs() / rate < 0.05,
            "offered {rate}, scheduled {achieved}"
        );
    }

    #[test]
    fn burst_schedule_is_all_at_zero() {
        let s = Schedule::burst(10);
        assert_eq!(s.offsets_ns, vec![0; 10]);
    }
}
