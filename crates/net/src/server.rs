//! The TCP serving front-end (DESIGN.md §12).
//!
//! Three thread populations cooperate around one bounded
//! [`SubmitQueue`]:
//!
//! * the **acceptor** polls a non-blocking listener, greets each
//!   connection with [`Msg::Hello`], and spawns its reader/writer pair;
//! * per-connection **readers** decode frames and submit them. A reader
//!   stops pulling from its socket while the connection's in-flight
//!   window is full — the kernel's TCP flow control then pushes back on
//!   the client, which is the per-connection backpressure story. A
//!   submission shed by the queue's high-water mark is answered with a
//!   fast `Rejected` instead (load shedding: overload degrades to
//!   rejects, not latency collapse);
//! * per-node **engine pumps** drive [`RoutinePool::serve`] over the
//!   queue, executing each request as a real DrTM+R transaction and
//!   pushing the response into the connection's bounded outbox, which a
//!   per-connection **writer** thread flushes — engine routines never
//!   block on socket I/O.
//!
//! Shutdown ([`Server::shutdown`], or SIGINT/SIGTERM via
//! `drtm_base::shutdown`) is graceful: the acceptor stops, the queue
//! closes (new arrivals shed, backlog drains), pumps retire once the
//! queue is empty, writers flush every outstanding response, and a
//! final stats scrape is returned.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use drtm_base::stats::Counter;
use drtm_base::sync::{Condvar, Mutex};
use drtm_core::cluster::{DrtmCluster, EngineOpts};
use drtm_core::{scrape_cluster, Admission, RoutinePool, SubmitQueue, Worker};
use drtm_obs::trace::{event, EventKind};
use drtm_obs::{HistSummary, NetStats, Snapshot};
use drtm_workloads::smallbank::{self, SbCfg, SbInput, SbTxn};

use crate::proto::{self, Msg, RawOp, Status};

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Machines in the simulated cluster.
    pub nodes: usize,
    /// SmallBank accounts per machine.
    pub accounts: usize,
    /// Replicas per record (1 = no replication).
    pub replicas: usize,
    /// Serving routines per node (the [`RoutinePool`] size).
    pub routines: usize,
    /// Admission-queue high-water mark: submissions past this depth are
    /// shed with a fast `Rejected`.
    pub high_water: usize,
    /// Per-connection in-flight window: a reader stops pulling from its
    /// socket once this many requests are admitted but unanswered.
    pub window: usize,
}

impl Default for ServerCfg {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            nodes: 2,
            accounts: 1_000,
            replicas: 1,
            routines: 4,
            high_water: 256,
            window: 128,
        }
    }
}

/// One admitted request travelling from a reader to an engine routine.
struct Job {
    conn: Arc<Conn>,
    id: u64,
    body: JobBody,
    admitted: Instant,
}

enum JobBody {
    SmallBank(SbInput),
    Raw(Vec<RawOp>),
}

/// In-flight accounting of one connection.
struct Flight {
    in_flight: usize,
    eof: bool,
}

/// Per-connection shared state: the response outbox (flushed by the
/// writer thread) and the in-flight window (throttling the reader).
struct Conn {
    out: Mutex<(VecDeque<Vec<u8>>, bool)>,
    out_cv: Condvar,
    fl: Mutex<Flight>,
    fl_cv: Condvar,
}

impl Conn {
    fn new() -> Self {
        Self {
            out: Mutex::new((VecDeque::new(), false)),
            out_cv: Condvar::new(),
            fl: Mutex::new(Flight {
                in_flight: 0,
                eof: false,
            }),
            fl_cv: Condvar::new(),
        }
    }

    /// Queues an encoded frame for the writer thread.
    fn send(&self, frame: Vec<u8>) {
        self.out.lock().0.push_back(frame);
        self.out_cv.notify_all();
    }

    /// Marks the outbox complete: the writer flushes what's left and
    /// exits.
    fn close_out(&self) {
        self.out.lock().1 = true;
        self.out_cv.notify_all();
    }

    /// Blocks the reader until the in-flight window has room, then
    /// takes a slot. Returns `false` if the connection is closing.
    fn acquire_slot(&self, window: usize) -> bool {
        let mut fl = self.fl.lock();
        while fl.in_flight >= window && !fl.eof {
            fl = self.fl_cv.wait(fl);
        }
        if fl.eof {
            return false;
        }
        fl.in_flight += 1;
        true
    }

    /// Sends the response for an admitted request and releases its
    /// window slot; closes the outbox when the socket hit EOF and this
    /// was the last outstanding request.
    fn complete(&self, frame: Vec<u8>) {
        self.send(frame);
        let mut fl = self.fl.lock();
        fl.in_flight -= 1;
        let drained = fl.eof && fl.in_flight == 0;
        drop(fl);
        self.fl_cv.notify_all();
        if drained {
            self.close_out();
        }
    }

    /// Records reader-side EOF; closes the outbox once nothing is in
    /// flight.
    fn reader_done(&self) {
        let mut fl = self.fl.lock();
        fl.eof = true;
        let drained = fl.in_flight == 0;
        drop(fl);
        self.fl_cv.notify_all();
        if drained {
            self.close_out();
        }
    }
}

/// A running serving front-end. Dropping without [`Server::shutdown`]
/// leaks the listener thread; always shut down explicitly.
pub struct Server {
    cluster: Arc<DrtmCluster>,
    sb: SbCfg,
    queue: Arc<SubmitQueue<Job>>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    conns_opened: Arc<Counter>,
    conns_closed: Arc<Counter>,
    completed: Arc<Counter>,
    in_flight: Arc<AtomicU64>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    pumps: Vec<std::thread::JoinHandle<Vec<Worker>>>,
}

impl Server {
    /// Boots a server: builds and loads the simulated cluster, binds
    /// the listener, and spawns the acceptor and engine pumps.
    pub fn start(cfg: ServerCfg) -> std::io::Result<Server> {
        let sb = SbCfg {
            nodes: cfg.nodes,
            accounts: cfg.accounts,
            ..Default::default()
        };
        let opts = EngineOpts {
            replicas: cfg.replicas,
            region_size: sb.region_size(),
            routines: cfg.routines,
            ..Default::default()
        };
        let cluster = DrtmCluster::new(cfg.nodes, &sb.schema(), opts);
        smallbank::load(&cluster, &sb);

        let queue: Arc<SubmitQueue<Job>> = Arc::new(SubmitQueue::new(cfg.high_water));
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let conns_opened = Arc::new(Counter::new());
        let conns_closed = Arc::new(Counter::new());
        let completed = Arc::new(Counter::new());
        let in_flight = Arc::new(AtomicU64::new(0));

        // Engine pumps: one routine pool per node, all draining the one
        // shared admission queue.
        let pumps = (0..cfg.nodes)
            .map(|node| {
                let cluster = Arc::clone(&cluster);
                let queue = Arc::clone(&queue);
                let completed = Arc::clone(&completed);
                let in_flight = Arc::clone(&in_flight);
                std::thread::spawn(move || {
                    let workers: Vec<Worker> = (0..cfg.routines.max(1))
                        .map(|r| cluster.worker(node, 0xC0FFEE + (node * 131 + r) as u64))
                        .collect();
                    RoutinePool::serve(workers, &queue, |_, w, job: Job| {
                        execute_job(w, job, &completed, &in_flight);
                    })
                })
            })
            .collect();

        // The acceptor: poll for connections until stopped.
        let acceptor = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            let conns_opened = Arc::clone(&conns_opened);
            let conns_closed = Arc::clone(&conns_closed);
            let in_flight = Arc::clone(&in_flight);
            let hello = Msg::Hello {
                version: proto::PROTO_VERSION,
                nodes: cfg.nodes as u32,
                accounts: cfg.accounts as u64,
            };
            std::thread::Builder::new()
                .name("drtm-accept".into())
                .spawn(move || {
                    let mut conn_threads = Vec::new();
                    loop {
                        if stop.load(Ordering::Relaxed) || drtm_base::shutdown::requested() {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                conns_opened.inc();
                                event(EventKind::Net, "accept", peer.port() as u64, 0);
                                conn_threads.push(spawn_conn(
                                    stream,
                                    &hello,
                                    Arc::clone(&queue),
                                    Arc::clone(&stop),
                                    Arc::clone(&conns_closed),
                                    Arc::clone(&in_flight),
                                    cfg.window,
                                ));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                    for (r, w) in conn_threads {
                        let _ = r.join();
                        let _ = w.join();
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            cluster,
            sb,
            queue,
            addr,
            stop,
            conns_opened,
            conns_closed,
            completed,
            in_flight,
            acceptor: Some(acceptor),
            pumps,
        })
    }

    /// The bound listen address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time stats: the engine scrape with the serving-tier
    /// section filled in.
    pub fn snapshot(&self) -> Snapshot {
        let mut s = scrape_cluster(&self.cluster);
        s.net = NetStats {
            conns_opened: self.conns_opened.get(),
            conns_closed: self.conns_closed.get(),
            accepted: self.queue.accepted(),
            rejected: self.queue.rejected(),
            completed: self.completed.get(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
            queue_wait_ns: HistSummary::of(self.queue.wait_hist()),
        };
        s
    }

    /// The conservation baseline for this server's dataset.
    pub fn initial_total(&self) -> i64 {
        smallbank::initial_total(&self.sb)
    }

    /// Sums every account balance (only meaningful once quiesced —
    /// i.e. after [`Server::shutdown`] on a zero-sum workload).
    pub fn audit_total(cluster: &Arc<DrtmCluster>, sb: &SbCfg) -> i64 {
        drtm_workloads::audit::smallbank_total(cluster, sb)
    }

    /// Gracefully drains and stops the server: no new connections, new
    /// submissions shed, backlog executed, responses flushed. Returns
    /// the final stats scrape and the quiesced cluster for audits.
    pub fn shutdown(mut self) -> (Snapshot, Arc<DrtmCluster>, SbCfg) {
        event(EventKind::Net, "drain", 0, 0);
        self.stop.store(true, Ordering::SeqCst);
        self.queue.close();
        for p in self.pumps.drain(..) {
            let _ = p.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        let snap = self.snapshot();
        (snap, Arc::clone(&self.cluster), self.sb.clone())
    }
}

/// Executes one admitted request on a pool routine's worker and
/// completes it back to its connection.
fn execute_job(w: &mut Worker, job: Job, completed: &Counter, in_flight: &AtomicU64) {
    let queue_us = (job.admitted.elapsed().as_micros()).min(u32::MAX as u128) as u32;
    let status = match &job.body {
        JobBody::SmallBank(inp) => {
            let res = if inp.txn.read_only() {
                w.run_ro(|t| smallbank::execute(t, inp))
            } else {
                w.run(|t| smallbank::execute(t, inp))
            };
            match res {
                Ok(()) => Status::Committed,
                Err(_) => Status::Aborted,
            }
        }
        JobBody::Raw(ops) => {
            let res = w.run(|t| {
                for op in ops {
                    match op {
                        RawOp::Read { shard, table, key } => {
                            t.read(*shard as usize, *table, *key)?;
                        }
                        RawOp::Write {
                            shard,
                            table,
                            key,
                            value,
                        } => {
                            t.write(*shard as usize, *table, *key, value.clone())?;
                        }
                    }
                }
                Ok(())
            });
            match res {
                Ok(()) => Status::Committed,
                Err(_) => Status::Aborted,
            }
        }
    };
    completed.inc();
    in_flight.fetch_sub(1, Ordering::Relaxed);
    job.conn.complete(proto::encode(&Msg::Response {
        id: job.id,
        status,
        queue_us,
    }));
}

type ConnHandles = (std::thread::JoinHandle<()>, std::thread::JoinHandle<()>);

/// Spawns the reader/writer pair of one accepted connection.
fn spawn_conn(
    stream: TcpStream,
    hello: &Msg,
    queue: Arc<SubmitQueue<Job>>,
    stop: Arc<AtomicBool>,
    conns_closed: Arc<Counter>,
    in_flight: Arc<AtomicU64>,
    window: usize,
) -> ConnHandles {
    let _ = stream.set_nodelay(true);
    let conn = Arc::new(Conn::new());
    conn.send(proto::encode(hello));

    let writer = {
        let conn = Arc::clone(&conn);
        let mut out = stream.try_clone().expect("clone stream");
        std::thread::spawn(move || {
            loop {
                let frame = {
                    let mut o = conn.out.lock();
                    loop {
                        if let Some(f) = o.0.pop_front() {
                            break Some(f);
                        }
                        if o.1 {
                            break None;
                        }
                        o = conn.out_cv.wait(o);
                    }
                };
                match frame {
                    Some(f) => {
                        if out.write_all(&f).is_err() {
                            break;
                        }
                    }
                    None => break,
                }
            }
            let _ = out.flush();
            let _ = out.shutdown(std::net::Shutdown::Both);
        })
    };

    let reader = {
        let conn = Arc::clone(&conn);
        let mut input = stream;
        // A finite read timeout lets an idle connection notice server
        // shutdown instead of blocking in `read` forever.
        let _ = input.set_read_timeout(Some(Duration::from_millis(50)));
        std::thread::spawn(move || {
            loop {
                // Backpressure: no more reads while the window is full.
                if !conn.acquire_slot(window) {
                    break;
                }
                let msg = match proto::read_msg(&mut input) {
                    Ok(Some(m)) => m,
                    Ok(None) => {
                        release_slot(&conn);
                        break; // clean EOF
                    }
                    Err(proto::WireError::Io(e))
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        release_slot(&conn);
                        if stop.load(Ordering::Relaxed) || drtm_base::shutdown::requested() {
                            break;
                        }
                        continue;
                    }
                    Err(_) => {
                        release_slot(&conn);
                        break; // protocol violation: drop the conn
                    }
                };
                let (id, body) = match msg {
                    Msg::SmallBank {
                        id,
                        txn,
                        a_shard,
                        a_key,
                        b_shard,
                        b_key,
                        amount,
                    } => (
                        id,
                        JobBody::SmallBank(SbInput {
                            txn: SbTxn::ALL[txn as usize],
                            a: (a_shard as usize, a_key),
                            b: (b_shard as usize, b_key),
                            amount,
                        }),
                    ),
                    Msg::Raw { id, ops } => (id, JobBody::Raw(ops)),
                    _ => {
                        release_slot(&conn);
                        break; // clients must not send server messages
                    }
                };
                in_flight.fetch_add(1, Ordering::Relaxed);
                let job = Job {
                    conn: Arc::clone(&conn),
                    id,
                    body,
                    admitted: Instant::now(),
                };
                if queue.submit(job) == Admission::Rejected {
                    // Shed: answer immediately, release the slot — the
                    // engine never sees this request.
                    event(EventKind::Net, "reject", id, 0);
                    in_flight.fetch_sub(1, Ordering::Relaxed);
                    conn.complete(proto::encode(&Msg::Response {
                        id,
                        status: Status::Rejected,
                        queue_us: 0,
                    }));
                } else {
                    event(EventKind::Net, "admit", id, 0);
                }
            }
            conn.reader_done();
            conns_closed.inc();
        })
    };
    (reader, writer)
}

/// Returns an acquired-but-unused window slot.
fn release_slot(conn: &Conn) {
    let mut fl = conn.fl.lock();
    fl.in_flight -= 1;
    drop(fl);
    conn.fl_cv.notify_all();
}
