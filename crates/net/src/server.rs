//! The TCP serving front-end (DESIGN.md §12, §16).
//!
//! Three thread populations cooperate around one admission plane:
//!
//! * the **acceptor** polls a non-blocking listener (exponential
//!   backoff from 100 µs to 5 ms while idle, reset on accept), greets
//!   each connection with [`Msg::Hello`], and spawns its reader/writer
//!   pair;
//! * per-connection **readers** decode frames and submit them. A reader
//!   stops pulling from its socket while the connection's in-flight
//!   window is full — the kernel's TCP flow control then pushes back on
//!   the client, which is the per-connection backpressure story. A
//!   submission shed by the admission plane is answered with a fast
//!   `Rejected` instead (load shedding: overload degrades to rejects,
//!   not latency collapse);
//! * per-node **engine pumps** drive [`RoutinePool`] serve loops over
//!   the admission plane, executing each request as a real DrTM+R
//!   transaction and pushing the response into the connection's bounded
//!   outbox, which a per-connection **writer** thread flushes — engine
//!   routines never block on socket I/O.
//!
//! The admission plane takes one of two shapes per
//! [`ServerCfg::route`]:
//!
//! * **`RoutePolicy::Shared`** (default): one bounded [`SubmitQueue`]
//!   drained by every pump — byte-identical to the pre-routing server,
//!   the baseline its regression pins hold against.
//! * **`RoutePolicy::Routed`** (DESIGN.md §16): a [`QueueGroup`] of
//!   per-pool queues. Admission routes each request to its *home* pool
//!   ([`crate::route::home_of`]: majority shard, first-writer
//!   tiebreak), so single-home requests execute as all-local HTM
//!   transactions with zero commit-path verbs; an empty pool steals
//!   the oldest item from the deepest sibling queue, never draining it
//!   below [`ServerCfg::steal_reserve`]. Shedding is two-level: a
//!   per-queue high-water mark plus a group-wide cap preserving the
//!   shared queue's total-backlog fast-reject semantics.
//!
//! Shutdown ([`Server::shutdown`], or SIGINT/SIGTERM via
//! `drtm_base::shutdown`) is graceful: the acceptor stops, the queue
//! closes (new arrivals shed, backlog drains), pumps retire once the
//! queue is empty, writers flush every outstanding response, and a
//! final stats scrape is returned.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use drtm_base::stats::Counter;
use drtm_base::sync::{Condvar, Mutex};
use drtm_core::cluster::{DrtmCluster, EngineOpts};
use drtm_core::{
    scrape_cluster, Admission, QueueGroup, RecoveryReport, RoutePolicy, RoutinePool, SubmitQueue,
    Worker,
};
use drtm_obs::trace::{self, event, event_id, EventKind};
use drtm_obs::{expo, HistSummary, NetStats, RouteStats, Snapshot, TsRing, TsSample};
use drtm_workloads::smallbank::{self, SbCfg, SbInput, SbTxn};

use crate::proto::{self, Msg, RawOp, ScrapeFormat, Status};
use crate::route;

/// Capacity of the in-server time-series ring: at the default sampling
/// cadence this holds the last several minutes of server history.
const TS_RING_CAP: usize = 4096;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Machines in the simulated cluster.
    pub nodes: usize,
    /// SmallBank accounts per machine.
    pub accounts: usize,
    /// Replicas per record (1 = no replication).
    pub replicas: usize,
    /// Serving routines per node (the [`RoutinePool`] size).
    pub routines: usize,
    /// Admission-queue high-water mark: submissions past this depth are
    /// shed with a fast `Rejected`.
    pub high_water: usize,
    /// Per-connection in-flight window: a reader stops pulling from its
    /// socket once this many requests are admitted but unanswered.
    pub window: usize,
    /// Period of the telemetry sampler thread that feeds the in-server
    /// time-series ring; 0 disables the sampler.
    pub sample_ms: u64,
    /// Admission dispatcher: `Shared` (one queue, the pre-routing
    /// behaviour) or `Routed` (per-pool queues + bounded stealing,
    /// DESIGN.md §16).
    pub route: RoutePolicy,
    /// Steal floor with `route = Routed`: a pool never drains a sibling
    /// queue below this many items.
    pub steal_reserve: usize,
}

impl Default for ServerCfg {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            nodes: 2,
            accounts: 1_000,
            replicas: 1,
            routines: 4,
            high_water: 256,
            window: 128,
            sample_ms: 5,
            route: RoutePolicy::Shared,
            steal_reserve: 2,
        }
    }
}

/// One admitted request travelling from a reader to an engine routine.
struct Job {
    conn: Arc<Conn>,
    id: u64,
    body: JobBody,
    admitted: Instant,
    /// Non-zero for head-sampled requests: the wire-propagated trace id
    /// linking the client-send, queue-wait, routine, and commit-phase
    /// spans of this request into one tree.
    trace: u64,
}

enum JobBody {
    SmallBank(SbInput),
    Raw(Vec<RawOp>),
}

/// In-flight accounting of one connection.
struct Flight {
    in_flight: usize,
    eof: bool,
}

/// Per-connection shared state: the response outbox (flushed by the
/// writer thread) and the in-flight window (throttling the reader).
struct Conn {
    out: Mutex<(VecDeque<Vec<u8>>, bool)>,
    out_cv: Condvar,
    fl: Mutex<Flight>,
    fl_cv: Condvar,
}

impl Conn {
    fn new() -> Self {
        Self {
            out: Mutex::new((VecDeque::new(), false)),
            out_cv: Condvar::new(),
            fl: Mutex::new(Flight {
                in_flight: 0,
                eof: false,
            }),
            fl_cv: Condvar::new(),
        }
    }

    /// Queues an encoded frame for the writer thread.
    fn send(&self, frame: Vec<u8>) {
        self.out.lock().0.push_back(frame);
        self.out_cv.notify_all();
    }

    /// Marks the outbox complete: the writer flushes what's left and
    /// exits.
    fn close_out(&self) {
        self.out.lock().1 = true;
        self.out_cv.notify_all();
    }

    /// Blocks the reader until the in-flight window has room, then
    /// takes a slot. Returns `false` if the connection is closing.
    fn acquire_slot(&self, window: usize) -> bool {
        let mut fl = self.fl.lock();
        while fl.in_flight >= window && !fl.eof {
            fl = self.fl_cv.wait(fl);
        }
        if fl.eof {
            return false;
        }
        fl.in_flight += 1;
        true
    }

    /// Sends the response for an admitted request and releases its
    /// window slot; closes the outbox when the socket hit EOF and this
    /// was the last outstanding request.
    fn complete(&self, frame: Vec<u8>) {
        self.send(frame);
        let mut fl = self.fl.lock();
        fl.in_flight -= 1;
        let drained = fl.eof && fl.in_flight == 0;
        drop(fl);
        self.fl_cv.notify_all();
        if drained {
            self.close_out();
        }
    }

    /// Records reader-side EOF; closes the outbox once nothing is in
    /// flight.
    fn reader_done(&self) {
        let mut fl = self.fl.lock();
        fl.eof = true;
        let drained = fl.in_flight == 0;
        drop(fl);
        self.fl_cv.notify_all();
        if drained {
            self.close_out();
        }
    }
}

/// The admission plane: the one shared queue (routing off) or the
/// per-pool [`QueueGroup`] plus local/remote dispatch counters
/// (routing on). Readers submit through it, pumps drain it, telemetry
/// scrapes it — one enum so no caller can mix the two shapes.
enum Admit {
    Shared(Arc<SubmitQueue<Job>>),
    Routed {
        group: Arc<QueueGroup<Job>>,
        /// Admitted requests whose whole shard set was home-owned.
        local: Counter,
        /// Admitted requests with at least one off-home shard.
        remote: Counter,
    },
}

impl Admit {
    fn routed(&self) -> bool {
        matches!(self, Admit::Routed { .. })
    }

    /// Offers a job to the plane. `home`/`all_local` are the router's
    /// verdict and are ignored on the shared path.
    fn submit(&self, home: usize, all_local: bool, job: Job) -> Admission {
        match self {
            Admit::Shared(q) => q.submit(job),
            Admit::Routed {
                group,
                local,
                remote,
            } => {
                let adm = group.submit(home, job);
                if adm == Admission::Admitted {
                    if all_local {
                        local.inc();
                    } else {
                        remote.inc();
                    }
                }
                adm
            }
        }
    }

    fn close(&self) {
        match self {
            Admit::Shared(q) => q.close(),
            Admit::Routed { group, .. } => group.close(),
        }
    }

    fn accepted(&self) -> u64 {
        match self {
            Admit::Shared(q) => q.accepted(),
            Admit::Routed { group, .. } => group.accepted_total(),
        }
    }

    fn rejected(&self) -> u64 {
        match self {
            Admit::Shared(q) => q.rejected(),
            Admit::Routed { group, .. } => group.rejected_total(),
        }
    }

    fn depth(&self) -> usize {
        match self {
            Admit::Shared(q) => q.depth(),
            Admit::Routed { group, .. } => group.depth_total(),
        }
    }

    fn wait_summary(&self) -> HistSummary {
        match self {
            Admit::Shared(q) => HistSummary::of(q.wait_hist()),
            Admit::Routed { group, .. } => HistSummary::of(group.wait_hist()),
        }
    }

    /// The routing section of a scrape; disabled/zero on the shared
    /// path.
    fn route_stats(&self) -> RouteStats {
        match self {
            Admit::Shared(_) => RouteStats::default(),
            Admit::Routed {
                group,
                local,
                remote,
            } => RouteStats {
                enabled: true,
                local: local.get(),
                remote: remote.get(),
                steals: group.steals_total(),
                shed_queue: group.shed_queue(),
                shed_global: group.shed_global(),
                depths: group.depths(),
            },
        }
    }
}

/// The shared telemetry plane of one running server.
///
/// Every scrape — the drain snapshot returned by [`Server::shutdown`],
/// a live [`Msg::StatsRequest`] answered mid-burst, and the periodic
/// time-series sampler — funnels through [`Telemetry::snapshot`], so
/// all consumers agree on what each counter means and live and drain
/// scrapes of the same cumulative counter are comparable (monotone).
struct Telemetry {
    cluster: Arc<DrtmCluster>,
    admit: Admit,
    conns_opened: Counter,
    conns_closed: Counter,
    completed: Counter,
    in_flight: AtomicU64,
    /// Ring of periodic sampler output; rendered by
    /// [`ScrapeFormat::Series`] scrapes.
    ts: TsRing,
    started: Instant,
}

impl Telemetry {
    fn new(cluster: Arc<DrtmCluster>, admit: Admit) -> Self {
        Self {
            cluster,
            admit,
            conns_opened: Counter::new(),
            conns_closed: Counter::new(),
            completed: Counter::new(),
            in_flight: AtomicU64::new(0),
            ts: TsRing::new(TS_RING_CAP),
            started: Instant::now(),
        }
    }

    /// The single scrape path: the engine scrape with the serving-tier
    /// and routing sections filled in.
    fn snapshot(&self) -> Snapshot {
        let mut s = scrape_cluster(&self.cluster);
        s.net = NetStats {
            conns_opened: self.conns_opened.get(),
            conns_closed: self.conns_closed.get(),
            accepted: self.admit.accepted(),
            rejected: self.admit.rejected(),
            completed: self.completed.get(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.admit.depth() as u64,
            queue_wait_ns: self.admit.wait_summary(),
        };
        s.route = self.admit.route_stats();
        s
    }

    /// Renders one scrape in the requested wire format.
    fn render(&self, format: ScrapeFormat) -> Vec<u8> {
        match format {
            ScrapeFormat::Json => expo::render_json(&self.snapshot()).into_bytes(),
            ScrapeFormat::Prom => expo::render_prometheus(&self.snapshot()).into_bytes(),
            ScrapeFormat::Series => self.ts.render_json().into_bytes(),
        }
    }

    /// Takes one time-series sample. Cheaper than a full snapshot: it
    /// reads the live counters directly instead of scraping histograms
    /// and NIC tables, so a few-millisecond cadence stays invisible.
    fn sample(&self) -> TsSample {
        let mut committed = 0;
        let mut aborted = 0;
        let mut abort_reasons = [0u64; drtm_obs::ABORT_REASONS.len()];
        for sh in self.cluster.obs.shards() {
            committed += sh.committed.get();
            aborted += sh.aborted.get();
            for (slot, c) in abort_reasons.iter_mut().zip(sh.aborts.iter()) {
                *slot += c.get();
            }
        }
        TsSample {
            wall_ms: self.started.elapsed().as_millis() as u64,
            queue_depth: self.admit.depth() as u64,
            in_flight: self.in_flight.load(Ordering::Relaxed),
            accepted: self.admit.accepted(),
            rejected: self.admit.rejected(),
            completed: self.completed.get(),
            committed,
            aborted,
            abort_reasons,
        }
    }
}

/// A running serving front-end. Dropping without [`Server::shutdown`]
/// leaks the listener thread; always shut down explicitly.
pub struct Server {
    sb: SbCfg,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    tele: Arc<Telemetry>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
    pumps: Vec<std::thread::JoinHandle<Vec<Worker>>>,
}

impl Server {
    /// Boots a server: builds and loads the simulated cluster, binds
    /// the listener, and spawns the acceptor and engine pumps.
    pub fn start(cfg: ServerCfg) -> std::io::Result<Server> {
        let sb = SbCfg {
            nodes: cfg.nodes,
            accounts: cfg.accounts,
            ..Default::default()
        };
        let opts = EngineOpts::builder()
            .replicas(cfg.replicas)
            .region_size(sb.region_size())
            .routines(cfg.routines)
            .build();
        let cluster = DrtmCluster::new(cfg.nodes, &sb.schema(), opts);
        smallbank::load(&cluster, &sb);

        // The admission plane: one shared queue, or per-pool queues
        // with a two-level shed — each queue's high-water scaled so a
        // single hot pool can hoard at most twice its fair share, the
        // group cap preserving the shared queue's total-backlog
        // fast-reject semantics exactly.
        let admit = match cfg.route {
            RoutePolicy::Shared => Admit::Shared(Arc::new(SubmitQueue::new(cfg.high_water))),
            RoutePolicy::Routed => {
                let pools = cfg.nodes.max(1);
                let per_queue = (2 * cfg.high_water / pools).max(1);
                Admit::Routed {
                    group: Arc::new(QueueGroup::new(
                        pools,
                        per_queue,
                        cfg.high_water,
                        cfg.steal_reserve,
                    )),
                    local: Counter::new(),
                    remote: Counter::new(),
                }
            }
        };
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let tele = Arc::new(Telemetry::new(Arc::clone(&cluster), admit));

        // Engine pumps: one routine pool per node. Routing off: every
        // pool drains the one shared admission queue. Routing on: each
        // pool serves its own member of the queue group, stealing from
        // siblings per the group's bounds.
        let pumps = (0..cfg.nodes)
            .map(|node| {
                let cluster = Arc::clone(&cluster);
                let tele = Arc::clone(&tele);
                std::thread::spawn(move || {
                    let workers: Vec<Worker> = (0..cfg.routines.max(1))
                        .map(|r| cluster.worker(node, 0xC0FFEE + (node * 131 + r) as u64))
                        .collect();
                    match &tele.admit {
                        Admit::Shared(queue) => {
                            RoutinePool::serve(workers, queue, async |_, w, job: Job| {
                                execute_job(w, job, &tele).await;
                            })
                        }
                        Admit::Routed { group, .. } => RoutinePool::serve_group(
                            workers,
                            group,
                            node,
                            async |_, w, job: Job| {
                                execute_job(w, job, &tele).await;
                            },
                        ),
                    }
                })
            })
            .collect();

        // The telemetry sampler: periodically push one cheap sample
        // into the time-series ring until shutdown.
        let sampler = (cfg.sample_ms > 0).then(|| {
            let tele = Arc::clone(&tele);
            let stop = Arc::clone(&stop);
            let period = Duration::from_millis(cfg.sample_ms);
            std::thread::Builder::new()
                .name("drtm-sample".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) && !drtm_base::shutdown::requested() {
                        tele.ts.push(tele.sample());
                        std::thread::sleep(period);
                    }
                    // One final sample so the series covers the drain.
                    tele.ts.push(tele.sample());
                })
                .expect("spawn sampler")
        });

        // The acceptor: poll for connections until stopped, backing
        // off exponentially while idle (100 µs → 5 ms) so cold
        // connections are greeted fast without a hot spin.
        const ACCEPT_BACKOFF_MIN: Duration = Duration::from_micros(100);
        const ACCEPT_BACKOFF_MAX: Duration = Duration::from_millis(5);
        let acceptor = {
            let stop = Arc::clone(&stop);
            let tele = Arc::clone(&tele);
            let hello = Msg::Hello {
                version: proto::PROTO_VERSION,
                nodes: cfg.nodes as u32,
                accounts: cfg.accounts as u64,
            };
            std::thread::Builder::new()
                .name("drtm-accept".into())
                .spawn(move || {
                    let mut conn_threads = Vec::new();
                    let mut backoff = ACCEPT_BACKOFF_MIN;
                    loop {
                        if stop.load(Ordering::Relaxed) || drtm_base::shutdown::requested() {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                backoff = ACCEPT_BACKOFF_MIN;
                                tele.conns_opened.inc();
                                event(EventKind::Net, "accept", peer.port() as u64, 0);
                                conn_threads.push(spawn_conn(
                                    stream,
                                    &hello,
                                    Arc::clone(&stop),
                                    Arc::clone(&tele),
                                    cfg.window,
                                ));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(backoff);
                                backoff = (backoff * 2).min(ACCEPT_BACKOFF_MAX);
                            }
                            Err(_) => break,
                        }
                    }
                    for (r, w) in conn_threads {
                        let _ = r.join();
                        let _ = w.join();
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            sb,
            addr,
            stop,
            tele,
            acceptor: Some(acceptor),
            sampler,
            pumps,
        })
    }

    /// The bound listen address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time stats: the engine scrape with the serving-tier
    /// section filled in. Same path a live [`Msg::StatsRequest`] takes.
    pub fn snapshot(&self) -> Snapshot {
        self.tele.snapshot()
    }

    /// Renders the in-server time-series ring (the sampler's output) as
    /// one JSON object.
    pub fn timeseries_json(&self) -> String {
        self.tele.ts.render_json()
    }

    /// The conservation baseline for this server's dataset.
    pub fn initial_total(&self) -> i64 {
        smallbank::initial_total(&self.sb)
    }

    /// Sums every account balance (only meaningful once quiesced —
    /// i.e. after [`Server::shutdown`] on a zero-sum workload).
    pub fn audit_total(cluster: &Arc<DrtmCluster>, sb: &SbCfg) -> i64 {
        drtm_workloads::audit::smallbank_total(cluster, sb)
    }

    /// Chaos hook: crashes simulated machine `node` under live load —
    /// its leases lapse, in-flight transactions touching it abort, and
    /// the pool keeps draining (aborted requests still get answers, so
    /// conservation audits hold through the fault).
    pub fn crash_node(&self, node: usize) {
        self.tele.cluster.crash(node);
    }

    /// Chaos hook: runs lease-driven recovery for a crashed `node`,
    /// restoring it to the configuration.
    pub fn recover_node(&self, node: usize) -> RecoveryReport {
        drtm_core::recover_node(&self.tele.cluster, node)
    }

    /// Gracefully drains and stops the server: no new connections, new
    /// submissions shed, backlog executed, responses flushed. Returns
    /// the final stats scrape, the quiesced cluster for audits, and the
    /// pools' virtual-time horizon.
    pub fn shutdown(mut self) -> Drained {
        event(EventKind::Net, "drain", 0, 0);
        self.stop.store(true, Ordering::SeqCst);
        self.tele.admit.close();
        // The pools' virtual clocks are the denominator of any
        // simulated-throughput claim: committed / (virtual_ns / 1e9) is
        // what an A/B across dispatcher policies must compare, not wall
        // time (verb waits advance virtual clocks without sleeping).
        let mut virtual_ns = 0u64;
        for p in self.pumps.drain(..) {
            if let Ok(workers) = p.join() {
                for w in &workers {
                    virtual_ns = virtual_ns.max(w.clock.now());
                }
            }
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(s) = self.sampler.take() {
            let _ = s.join();
        }
        let snap = self.snapshot();
        Drained {
            cluster: Arc::clone(&self.tele.cluster),
            sb: self.sb.clone(),
            snap,
            virtual_ns,
        }
    }
}

/// What a graceful [`Server::shutdown`] leaves behind: the final
/// scrape, the quiesced cluster (for conservation audits), the dataset
/// shape, and the serve pools' virtual-time horizon.
pub struct Drained {
    /// Final stats scrape (drain-complete counters).
    pub snap: Snapshot,
    /// The quiesced simulated cluster, for balance audits.
    pub cluster: Arc<DrtmCluster>,
    /// The dataset the server loaded.
    pub sb: SbCfg,
    /// Max virtual clock over every pool worker, ns — the denominator
    /// for committed-per-virtual-second throughput.
    pub virtual_ns: u64,
}

/// Executes one admitted request on a pool routine's worker and
/// completes it back to its connection.
async fn execute_job(w: &mut Worker, job: Job, tele: &Telemetry) {
    let queue_us = (job.admitted.elapsed().as_micros()).min(u32::MAX as u128) as u32;
    if job.trace != 0 {
        // Close the queue-wait span opened at admission and open the
        // routine span covering engine execution; the worker tags the
        // commit-phase spans itself via `set_trace`.
        trace::span_end(EventKind::Net, "queue", job.trace, 0);
        trace::span_begin(EventKind::Net, "routine", job.trace, 0);
        trace::flow_step(job.trace, 0);
    }
    w.set_trace(job.trace);
    let status = match &job.body {
        JobBody::SmallBank(inp) => {
            let res = if inp.txn.read_only() {
                w.run_ro_async(async |t| smallbank::execute(t, inp).await)
                    .await
            } else {
                w.run_async(async |t| smallbank::execute(t, inp).await)
                    .await
            };
            match res {
                Ok(()) => Status::Committed,
                Err(_) => Status::Aborted,
            }
        }
        JobBody::Raw(ops) => {
            let res = w
                .run_async(async |t| {
                    for op in ops {
                        match op {
                            RawOp::Read { shard, table, key } => {
                                t.read_async(*shard as usize, *table, *key).await?;
                            }
                            RawOp::Write {
                                shard,
                                table,
                                key,
                                value,
                            } => {
                                t.write_async(*shard as usize, *table, *key, value.clone())
                                    .await?;
                            }
                        }
                    }
                    Ok(())
                })
                .await;
            match res {
                Ok(()) => Status::Committed,
                Err(_) => Status::Aborted,
            }
        }
    };
    w.set_trace(0);
    if job.trace != 0 {
        trace::span_end(EventKind::Net, "routine", job.trace, 0);
    }
    tele.completed.inc();
    tele.in_flight.fetch_sub(1, Ordering::Relaxed);
    job.conn.complete(proto::encode(&Msg::Response {
        id: job.id,
        status,
        queue_us,
    }));
}

type ConnHandles = (std::thread::JoinHandle<()>, std::thread::JoinHandle<()>);

/// Picks the home pool for a decoded request body: the router's
/// majority-shard/first-writer rule over the body's access list. For
/// SmallBank this reduces to the first-written account's shard
/// (SendPayment and Amalgamate both write `a` first; every other txn
/// touches only `a`).
fn home_of_body(body: &JobBody, nodes: usize) -> (usize, bool) {
    match body {
        JobBody::SmallBank(inp) => {
            if matches!(inp.txn, SbTxn::SendPayment | SbTxn::Amalgamate) {
                route::home_of(&[(inp.a.0, true), (inp.b.0, true)], nodes)
            } else {
                route::home_of(&[(inp.a.0, !inp.txn.read_only())], nodes)
            }
        }
        JobBody::Raw(ops) => {
            let accesses: Vec<(usize, bool)> = ops
                .iter()
                .map(|op| match op {
                    RawOp::Read { shard, .. } => (*shard as usize, false),
                    RawOp::Write { shard, .. } => (*shard as usize, true),
                })
                .collect();
            route::home_of(&accesses, nodes)
        }
    }
}

/// Spawns the reader/writer pair of one accepted connection.
fn spawn_conn(
    stream: TcpStream,
    hello: &Msg,
    stop: Arc<AtomicBool>,
    tele: Arc<Telemetry>,
    window: usize,
) -> ConnHandles {
    let _ = stream.set_nodelay(true);
    let conn = Arc::new(Conn::new());
    conn.send(proto::encode(hello));

    let writer = {
        let conn = Arc::clone(&conn);
        let mut out = stream.try_clone().expect("clone stream");
        std::thread::spawn(move || {
            loop {
                let frame = {
                    let mut o = conn.out.lock();
                    loop {
                        if let Some(f) = o.0.pop_front() {
                            break Some(f);
                        }
                        if o.1 {
                            break None;
                        }
                        o = conn.out_cv.wait(o);
                    }
                };
                match frame {
                    Some(f) => {
                        if out.write_all(&f).is_err() {
                            break;
                        }
                    }
                    None => break,
                }
            }
            let _ = out.flush();
            let _ = out.shutdown(std::net::Shutdown::Both);
        })
    };

    let reader = {
        let conn = Arc::clone(&conn);
        let mut input = stream;
        // A finite read timeout lets an idle connection notice server
        // shutdown instead of blocking in `read` forever.
        let _ = input.set_read_timeout(Some(Duration::from_millis(50)));
        std::thread::spawn(move || {
            loop {
                // Backpressure: no more reads while the window is full.
                if !conn.acquire_slot(window) {
                    break;
                }
                let msg = match proto::read_msg(&mut input) {
                    Ok(Some(m)) => m,
                    Ok(None) => {
                        release_slot(&conn);
                        break; // clean EOF
                    }
                    Err(proto::WireError::Io(e))
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        release_slot(&conn);
                        if stop.load(Ordering::Relaxed) || drtm_base::shutdown::requested() {
                            break;
                        }
                        continue;
                    }
                    Err(_) => {
                        release_slot(&conn);
                        break; // protocol violation: drop the conn
                    }
                };
                let (id, sched_ns, body) = match msg {
                    Msg::SmallBank {
                        id,
                        txn,
                        a_shard,
                        a_key,
                        b_shard,
                        b_key,
                        amount,
                        sched_ns,
                    } => (
                        id,
                        sched_ns,
                        JobBody::SmallBank(SbInput {
                            txn: SbTxn::ALL[txn as usize],
                            a: (a_shard as usize, a_key),
                            b: (b_shard as usize, b_key),
                            amount,
                        }),
                    ),
                    Msg::Raw { id, sched_ns, ops } => (id, sched_ns, JobBody::Raw(ops)),
                    Msg::StatsRequest { format } => {
                        // A live scrape: answered inline from the
                        // telemetry plane, never touching the engine
                        // queue or its accept/complete counters.
                        conn.complete(proto::encode(&Msg::StatsResponse {
                            format,
                            body: tele.render(format),
                        }));
                        continue;
                    }
                    _ => {
                        release_slot(&conn);
                        break; // clients must not send server messages
                    }
                };
                // Same deterministic head-sampling decision the client
                // made, recomputed from the request id — no wire bit.
                let tr = trace::trace_for(id);
                // Routing on: pick the home pool from the request's
                // shard set before admission. Off: skip the router
                // entirely so the shared path stays byte-identical.
                let (home, all_local) = if tele.admit.routed() {
                    home_of_body(&body, tele.cluster.nodes())
                } else {
                    (0, false)
                };
                tele.in_flight.fetch_add(1, Ordering::Relaxed);
                let job = Job {
                    conn: Arc::clone(&conn),
                    id,
                    body,
                    admitted: Instant::now(),
                    trace: tr,
                };
                if tele.admit.submit(home, all_local, job) == Admission::Rejected {
                    // Shed: answer immediately, release the slot — the
                    // engine never sees this request.
                    event(EventKind::Net, "reject", id, 0);
                    if tr != 0 {
                        trace::flow_end(tr, 0);
                    }
                    tele.in_flight.fetch_sub(1, Ordering::Relaxed);
                    conn.complete(proto::encode(&Msg::Response {
                        id,
                        status: Status::Rejected,
                        queue_us: 0,
                    }));
                } else {
                    event_id(EventKind::Net, "admit", sched_ns, tr, 0);
                    if tele.admit.routed() {
                        // Routing decision, observable per request:
                        // arg packs all_local (bit 32) over the home
                        // pool index.
                        event(
                            EventKind::Net,
                            "route",
                            ((all_local as u64) << 32) | home as u64,
                            0,
                        );
                    }
                    if tr != 0 {
                        trace::flow_step(tr, 0);
                        trace::span_begin(EventKind::Net, "queue", tr, 0);
                    }
                }
            }
            conn.reader_done();
            tele.conns_closed.inc();
        })
    };
    (reader, writer)
}

/// Returns an acquired-but-unused window slot.
fn release_slot(conn: &Conn) {
    let mut fl = conn.fl.lock();
    fl.in_flight -= 1;
    drop(fl);
    conn.fl_cv.notify_all();
}
