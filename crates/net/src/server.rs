//! The TCP serving front-end (DESIGN.md §12).
//!
//! Three thread populations cooperate around one bounded
//! [`SubmitQueue`]:
//!
//! * the **acceptor** polls a non-blocking listener, greets each
//!   connection with [`Msg::Hello`], and spawns its reader/writer pair;
//! * per-connection **readers** decode frames and submit them. A reader
//!   stops pulling from its socket while the connection's in-flight
//!   window is full — the kernel's TCP flow control then pushes back on
//!   the client, which is the per-connection backpressure story. A
//!   submission shed by the queue's high-water mark is answered with a
//!   fast `Rejected` instead (load shedding: overload degrades to
//!   rejects, not latency collapse);
//! * per-node **engine pumps** drive [`RoutinePool::serve`] over the
//!   queue, executing each request as a real DrTM+R transaction and
//!   pushing the response into the connection's bounded outbox, which a
//!   per-connection **writer** thread flushes — engine routines never
//!   block on socket I/O.
//!
//! Shutdown ([`Server::shutdown`], or SIGINT/SIGTERM via
//! `drtm_base::shutdown`) is graceful: the acceptor stops, the queue
//! closes (new arrivals shed, backlog drains), pumps retire once the
//! queue is empty, writers flush every outstanding response, and a
//! final stats scrape is returned.

use std::collections::VecDeque;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use drtm_base::stats::Counter;
use drtm_base::sync::{Condvar, Mutex};
use drtm_core::cluster::{DrtmCluster, EngineOpts};
use drtm_core::{scrape_cluster, Admission, RoutinePool, SubmitQueue, Worker};
use drtm_obs::trace::{self, event, event_id, EventKind};
use drtm_obs::{expo, HistSummary, NetStats, Snapshot, TsRing, TsSample};
use drtm_workloads::smallbank::{self, SbCfg, SbInput, SbTxn};

use crate::proto::{self, Msg, RawOp, ScrapeFormat, Status};

/// Capacity of the in-server time-series ring: at the default sampling
/// cadence this holds the last several minutes of server history.
const TS_RING_CAP: usize = 4096;

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServerCfg {
    /// Listen address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Machines in the simulated cluster.
    pub nodes: usize,
    /// SmallBank accounts per machine.
    pub accounts: usize,
    /// Replicas per record (1 = no replication).
    pub replicas: usize,
    /// Serving routines per node (the [`RoutinePool`] size).
    pub routines: usize,
    /// Admission-queue high-water mark: submissions past this depth are
    /// shed with a fast `Rejected`.
    pub high_water: usize,
    /// Per-connection in-flight window: a reader stops pulling from its
    /// socket once this many requests are admitted but unanswered.
    pub window: usize,
    /// Period of the telemetry sampler thread that feeds the in-server
    /// time-series ring; 0 disables the sampler.
    pub sample_ms: u64,
}

impl Default for ServerCfg {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            nodes: 2,
            accounts: 1_000,
            replicas: 1,
            routines: 4,
            high_water: 256,
            window: 128,
            sample_ms: 5,
        }
    }
}

/// One admitted request travelling from a reader to an engine routine.
struct Job {
    conn: Arc<Conn>,
    id: u64,
    body: JobBody,
    admitted: Instant,
    /// Non-zero for head-sampled requests: the wire-propagated trace id
    /// linking the client-send, queue-wait, routine, and commit-phase
    /// spans of this request into one tree.
    trace: u64,
}

enum JobBody {
    SmallBank(SbInput),
    Raw(Vec<RawOp>),
}

/// In-flight accounting of one connection.
struct Flight {
    in_flight: usize,
    eof: bool,
}

/// Per-connection shared state: the response outbox (flushed by the
/// writer thread) and the in-flight window (throttling the reader).
struct Conn {
    out: Mutex<(VecDeque<Vec<u8>>, bool)>,
    out_cv: Condvar,
    fl: Mutex<Flight>,
    fl_cv: Condvar,
}

impl Conn {
    fn new() -> Self {
        Self {
            out: Mutex::new((VecDeque::new(), false)),
            out_cv: Condvar::new(),
            fl: Mutex::new(Flight {
                in_flight: 0,
                eof: false,
            }),
            fl_cv: Condvar::new(),
        }
    }

    /// Queues an encoded frame for the writer thread.
    fn send(&self, frame: Vec<u8>) {
        self.out.lock().0.push_back(frame);
        self.out_cv.notify_all();
    }

    /// Marks the outbox complete: the writer flushes what's left and
    /// exits.
    fn close_out(&self) {
        self.out.lock().1 = true;
        self.out_cv.notify_all();
    }

    /// Blocks the reader until the in-flight window has room, then
    /// takes a slot. Returns `false` if the connection is closing.
    fn acquire_slot(&self, window: usize) -> bool {
        let mut fl = self.fl.lock();
        while fl.in_flight >= window && !fl.eof {
            fl = self.fl_cv.wait(fl);
        }
        if fl.eof {
            return false;
        }
        fl.in_flight += 1;
        true
    }

    /// Sends the response for an admitted request and releases its
    /// window slot; closes the outbox when the socket hit EOF and this
    /// was the last outstanding request.
    fn complete(&self, frame: Vec<u8>) {
        self.send(frame);
        let mut fl = self.fl.lock();
        fl.in_flight -= 1;
        let drained = fl.eof && fl.in_flight == 0;
        drop(fl);
        self.fl_cv.notify_all();
        if drained {
            self.close_out();
        }
    }

    /// Records reader-side EOF; closes the outbox once nothing is in
    /// flight.
    fn reader_done(&self) {
        let mut fl = self.fl.lock();
        fl.eof = true;
        let drained = fl.in_flight == 0;
        drop(fl);
        self.fl_cv.notify_all();
        if drained {
            self.close_out();
        }
    }
}

/// The shared telemetry plane of one running server.
///
/// Every scrape — the drain snapshot returned by [`Server::shutdown`],
/// a live [`Msg::StatsRequest`] answered mid-burst, and the periodic
/// time-series sampler — funnels through [`Telemetry::snapshot`], so
/// all consumers agree on what each counter means and live and drain
/// scrapes of the same cumulative counter are comparable (monotone).
struct Telemetry {
    cluster: Arc<DrtmCluster>,
    queue: Arc<SubmitQueue<Job>>,
    conns_opened: Counter,
    conns_closed: Counter,
    completed: Counter,
    in_flight: AtomicU64,
    /// Ring of periodic sampler output; rendered by
    /// [`ScrapeFormat::Series`] scrapes.
    ts: TsRing,
    started: Instant,
}

impl Telemetry {
    fn new(cluster: Arc<DrtmCluster>, queue: Arc<SubmitQueue<Job>>) -> Self {
        Self {
            cluster,
            queue,
            conns_opened: Counter::new(),
            conns_closed: Counter::new(),
            completed: Counter::new(),
            in_flight: AtomicU64::new(0),
            ts: TsRing::new(TS_RING_CAP),
            started: Instant::now(),
        }
    }

    /// The single scrape path: the engine scrape with the serving-tier
    /// section filled in.
    fn snapshot(&self) -> Snapshot {
        let mut s = scrape_cluster(&self.cluster);
        s.net = NetStats {
            conns_opened: self.conns_opened.get(),
            conns_closed: self.conns_closed.get(),
            accepted: self.queue.accepted(),
            rejected: self.queue.rejected(),
            completed: self.completed.get(),
            in_flight: self.in_flight.load(Ordering::Relaxed),
            queue_depth: self.queue.depth() as u64,
            queue_wait_ns: HistSummary::of(self.queue.wait_hist()),
        };
        s
    }

    /// Renders one scrape in the requested wire format.
    fn render(&self, format: ScrapeFormat) -> Vec<u8> {
        match format {
            ScrapeFormat::Json => expo::render_json(&self.snapshot()).into_bytes(),
            ScrapeFormat::Prom => expo::render_prometheus(&self.snapshot()).into_bytes(),
            ScrapeFormat::Series => self.ts.render_json().into_bytes(),
        }
    }

    /// Takes one time-series sample. Cheaper than a full snapshot: it
    /// reads the live counters directly instead of scraping histograms
    /// and NIC tables, so a few-millisecond cadence stays invisible.
    fn sample(&self) -> TsSample {
        let mut committed = 0;
        let mut aborted = 0;
        let mut abort_reasons = [0u64; drtm_obs::ABORT_REASONS.len()];
        for sh in self.cluster.obs.shards() {
            committed += sh.committed.get();
            aborted += sh.aborted.get();
            for (slot, c) in abort_reasons.iter_mut().zip(sh.aborts.iter()) {
                *slot += c.get();
            }
        }
        TsSample {
            wall_ms: self.started.elapsed().as_millis() as u64,
            queue_depth: self.queue.depth() as u64,
            in_flight: self.in_flight.load(Ordering::Relaxed),
            accepted: self.queue.accepted(),
            rejected: self.queue.rejected(),
            completed: self.completed.get(),
            committed,
            aborted,
            abort_reasons,
        }
    }
}

/// A running serving front-end. Dropping without [`Server::shutdown`]
/// leaks the listener thread; always shut down explicitly.
pub struct Server {
    sb: SbCfg,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    tele: Arc<Telemetry>,
    acceptor: Option<std::thread::JoinHandle<()>>,
    sampler: Option<std::thread::JoinHandle<()>>,
    pumps: Vec<std::thread::JoinHandle<Vec<Worker>>>,
}

impl Server {
    /// Boots a server: builds and loads the simulated cluster, binds
    /// the listener, and spawns the acceptor and engine pumps.
    pub fn start(cfg: ServerCfg) -> std::io::Result<Server> {
        let sb = SbCfg {
            nodes: cfg.nodes,
            accounts: cfg.accounts,
            ..Default::default()
        };
        let opts = EngineOpts::builder()
            .replicas(cfg.replicas)
            .region_size(sb.region_size())
            .routines(cfg.routines)
            .build();
        let cluster = DrtmCluster::new(cfg.nodes, &sb.schema(), opts);
        smallbank::load(&cluster, &sb);

        let queue: Arc<SubmitQueue<Job>> = Arc::new(SubmitQueue::new(cfg.high_water));
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let tele = Arc::new(Telemetry::new(Arc::clone(&cluster), Arc::clone(&queue)));

        // Engine pumps: one routine pool per node, all draining the one
        // shared admission queue.
        let pumps = (0..cfg.nodes)
            .map(|node| {
                let cluster = Arc::clone(&cluster);
                let queue = Arc::clone(&queue);
                let tele = Arc::clone(&tele);
                std::thread::spawn(move || {
                    let workers: Vec<Worker> = (0..cfg.routines.max(1))
                        .map(|r| cluster.worker(node, 0xC0FFEE + (node * 131 + r) as u64))
                        .collect();
                    RoutinePool::serve(workers, &queue, async |_, w, job: Job| {
                        execute_job(w, job, &tele).await;
                    })
                })
            })
            .collect();

        // The telemetry sampler: periodically push one cheap sample
        // into the time-series ring until shutdown.
        let sampler = (cfg.sample_ms > 0).then(|| {
            let tele = Arc::clone(&tele);
            let stop = Arc::clone(&stop);
            let period = Duration::from_millis(cfg.sample_ms);
            std::thread::Builder::new()
                .name("drtm-sample".into())
                .spawn(move || {
                    while !stop.load(Ordering::Relaxed) && !drtm_base::shutdown::requested() {
                        tele.ts.push(tele.sample());
                        std::thread::sleep(period);
                    }
                    // One final sample so the series covers the drain.
                    tele.ts.push(tele.sample());
                })
                .expect("spawn sampler")
        });

        // The acceptor: poll for connections until stopped.
        let acceptor = {
            let queue = Arc::clone(&queue);
            let stop = Arc::clone(&stop);
            let tele = Arc::clone(&tele);
            let hello = Msg::Hello {
                version: proto::PROTO_VERSION,
                nodes: cfg.nodes as u32,
                accounts: cfg.accounts as u64,
            };
            std::thread::Builder::new()
                .name("drtm-accept".into())
                .spawn(move || {
                    let mut conn_threads = Vec::new();
                    loop {
                        if stop.load(Ordering::Relaxed) || drtm_base::shutdown::requested() {
                            break;
                        }
                        match listener.accept() {
                            Ok((stream, peer)) => {
                                tele.conns_opened.inc();
                                event(EventKind::Net, "accept", peer.port() as u64, 0);
                                conn_threads.push(spawn_conn(
                                    stream,
                                    &hello,
                                    Arc::clone(&queue),
                                    Arc::clone(&stop),
                                    Arc::clone(&tele),
                                    cfg.window,
                                ));
                            }
                            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                                std::thread::sleep(Duration::from_millis(5));
                            }
                            Err(_) => break,
                        }
                    }
                    for (r, w) in conn_threads {
                        let _ = r.join();
                        let _ = w.join();
                    }
                })
                .expect("spawn acceptor")
        };

        Ok(Server {
            sb,
            addr,
            stop,
            tele,
            acceptor: Some(acceptor),
            sampler,
            pumps,
        })
    }

    /// The bound listen address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Point-in-time stats: the engine scrape with the serving-tier
    /// section filled in. Same path a live [`Msg::StatsRequest`] takes.
    pub fn snapshot(&self) -> Snapshot {
        self.tele.snapshot()
    }

    /// Renders the in-server time-series ring (the sampler's output) as
    /// one JSON object.
    pub fn timeseries_json(&self) -> String {
        self.tele.ts.render_json()
    }

    /// The conservation baseline for this server's dataset.
    pub fn initial_total(&self) -> i64 {
        smallbank::initial_total(&self.sb)
    }

    /// Sums every account balance (only meaningful once quiesced —
    /// i.e. after [`Server::shutdown`] on a zero-sum workload).
    pub fn audit_total(cluster: &Arc<DrtmCluster>, sb: &SbCfg) -> i64 {
        drtm_workloads::audit::smallbank_total(cluster, sb)
    }

    /// Gracefully drains and stops the server: no new connections, new
    /// submissions shed, backlog executed, responses flushed. Returns
    /// the final stats scrape and the quiesced cluster for audits.
    pub fn shutdown(mut self) -> (Snapshot, Arc<DrtmCluster>, SbCfg) {
        event(EventKind::Net, "drain", 0, 0);
        self.stop.store(true, Ordering::SeqCst);
        self.tele.queue.close();
        for p in self.pumps.drain(..) {
            let _ = p.join();
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(s) = self.sampler.take() {
            let _ = s.join();
        }
        let snap = self.snapshot();
        (snap, Arc::clone(&self.tele.cluster), self.sb.clone())
    }
}

/// Executes one admitted request on a pool routine's worker and
/// completes it back to its connection.
async fn execute_job(w: &mut Worker, job: Job, tele: &Telemetry) {
    let queue_us = (job.admitted.elapsed().as_micros()).min(u32::MAX as u128) as u32;
    if job.trace != 0 {
        // Close the queue-wait span opened at admission and open the
        // routine span covering engine execution; the worker tags the
        // commit-phase spans itself via `set_trace`.
        trace::span_end(EventKind::Net, "queue", job.trace, 0);
        trace::span_begin(EventKind::Net, "routine", job.trace, 0);
        trace::flow_step(job.trace, 0);
    }
    w.set_trace(job.trace);
    let status = match &job.body {
        JobBody::SmallBank(inp) => {
            let res = if inp.txn.read_only() {
                w.run_ro_async(async |t| smallbank::execute(t, inp).await)
                    .await
            } else {
                w.run_async(async |t| smallbank::execute(t, inp).await)
                    .await
            };
            match res {
                Ok(()) => Status::Committed,
                Err(_) => Status::Aborted,
            }
        }
        JobBody::Raw(ops) => {
            let res = w
                .run_async(async |t| {
                    for op in ops {
                        match op {
                            RawOp::Read { shard, table, key } => {
                                t.read_async(*shard as usize, *table, *key).await?;
                            }
                            RawOp::Write {
                                shard,
                                table,
                                key,
                                value,
                            } => {
                                t.write_async(*shard as usize, *table, *key, value.clone())
                                    .await?;
                            }
                        }
                    }
                    Ok(())
                })
                .await;
            match res {
                Ok(()) => Status::Committed,
                Err(_) => Status::Aborted,
            }
        }
    };
    w.set_trace(0);
    if job.trace != 0 {
        trace::span_end(EventKind::Net, "routine", job.trace, 0);
    }
    tele.completed.inc();
    tele.in_flight.fetch_sub(1, Ordering::Relaxed);
    job.conn.complete(proto::encode(&Msg::Response {
        id: job.id,
        status,
        queue_us,
    }));
}

type ConnHandles = (std::thread::JoinHandle<()>, std::thread::JoinHandle<()>);

/// Spawns the reader/writer pair of one accepted connection.
fn spawn_conn(
    stream: TcpStream,
    hello: &Msg,
    queue: Arc<SubmitQueue<Job>>,
    stop: Arc<AtomicBool>,
    tele: Arc<Telemetry>,
    window: usize,
) -> ConnHandles {
    let _ = stream.set_nodelay(true);
    let conn = Arc::new(Conn::new());
    conn.send(proto::encode(hello));

    let writer = {
        let conn = Arc::clone(&conn);
        let mut out = stream.try_clone().expect("clone stream");
        std::thread::spawn(move || {
            loop {
                let frame = {
                    let mut o = conn.out.lock();
                    loop {
                        if let Some(f) = o.0.pop_front() {
                            break Some(f);
                        }
                        if o.1 {
                            break None;
                        }
                        o = conn.out_cv.wait(o);
                    }
                };
                match frame {
                    Some(f) => {
                        if out.write_all(&f).is_err() {
                            break;
                        }
                    }
                    None => break,
                }
            }
            let _ = out.flush();
            let _ = out.shutdown(std::net::Shutdown::Both);
        })
    };

    let reader = {
        let conn = Arc::clone(&conn);
        let mut input = stream;
        // A finite read timeout lets an idle connection notice server
        // shutdown instead of blocking in `read` forever.
        let _ = input.set_read_timeout(Some(Duration::from_millis(50)));
        std::thread::spawn(move || {
            loop {
                // Backpressure: no more reads while the window is full.
                if !conn.acquire_slot(window) {
                    break;
                }
                let msg = match proto::read_msg(&mut input) {
                    Ok(Some(m)) => m,
                    Ok(None) => {
                        release_slot(&conn);
                        break; // clean EOF
                    }
                    Err(proto::WireError::Io(e))
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut =>
                    {
                        release_slot(&conn);
                        if stop.load(Ordering::Relaxed) || drtm_base::shutdown::requested() {
                            break;
                        }
                        continue;
                    }
                    Err(_) => {
                        release_slot(&conn);
                        break; // protocol violation: drop the conn
                    }
                };
                let (id, sched_ns, body) = match msg {
                    Msg::SmallBank {
                        id,
                        txn,
                        a_shard,
                        a_key,
                        b_shard,
                        b_key,
                        amount,
                        sched_ns,
                    } => (
                        id,
                        sched_ns,
                        JobBody::SmallBank(SbInput {
                            txn: SbTxn::ALL[txn as usize],
                            a: (a_shard as usize, a_key),
                            b: (b_shard as usize, b_key),
                            amount,
                        }),
                    ),
                    Msg::Raw { id, sched_ns, ops } => (id, sched_ns, JobBody::Raw(ops)),
                    Msg::StatsRequest { format } => {
                        // A live scrape: answered inline from the
                        // telemetry plane, never touching the engine
                        // queue or its accept/complete counters.
                        conn.complete(proto::encode(&Msg::StatsResponse {
                            format,
                            body: tele.render(format),
                        }));
                        continue;
                    }
                    _ => {
                        release_slot(&conn);
                        break; // clients must not send server messages
                    }
                };
                // Same deterministic head-sampling decision the client
                // made, recomputed from the request id — no wire bit.
                let tr = trace::trace_for(id);
                tele.in_flight.fetch_add(1, Ordering::Relaxed);
                let job = Job {
                    conn: Arc::clone(&conn),
                    id,
                    body,
                    admitted: Instant::now(),
                    trace: tr,
                };
                if queue.submit(job) == Admission::Rejected {
                    // Shed: answer immediately, release the slot — the
                    // engine never sees this request.
                    event(EventKind::Net, "reject", id, 0);
                    if tr != 0 {
                        trace::flow_end(tr, 0);
                    }
                    tele.in_flight.fetch_sub(1, Ordering::Relaxed);
                    conn.complete(proto::encode(&Msg::Response {
                        id,
                        status: Status::Rejected,
                        queue_us: 0,
                    }));
                } else {
                    event_id(EventKind::Net, "admit", sched_ns, tr, 0);
                    if tr != 0 {
                        trace::flow_step(tr, 0);
                        trace::span_begin(EventKind::Net, "queue", tr, 0);
                    }
                }
            }
            conn.reader_done();
            tele.conns_closed.inc();
        })
    };
    (reader, writer)
}

/// Returns an acquired-but-unused window slot.
fn release_slot(conn: &Conn) {
    let mut fl = conn.fl.lock();
    fl.in_flight -= 1;
    drop(fl);
    conn.fl_cv.notify_all();
}
