//! `drtm-client` — seeded open-loop load generator for `drtm-server`.
//!
//! Sends SmallBank requests at a configured offered rate (Poisson
//! arrivals; `--rate 0` = all-at-once burst) and reports goodput plus
//! wall-latency percentiles measured from each request's *scheduled*
//! arrival time (coordinated-omission-safe).

use drtm_net::loadgen::{run_client, scrape, ClientCfg};
use drtm_net::proto::ScrapeFormat;

fn usage() -> ! {
    eprintln!(
        "usage: drtm-client [--addr A] [--rate R] [--requests N] [--seed S]\n\
         \x20                 [--conns N] [--cross P] [--shard-skew T] [--zero-sum]\n\
         \x20                 [--json] [--trace FILE] [--scrape json|prom|series]\n\
         Open-loop SmallBank load at R req/s (0 = burst). --zero-sum restricts\n\
         the mix to send-payment+balance so the server can audit conservation.\n\
         --shard-skew T draws each request's home shard from a zipfian with\n\
         skew T in [0, 1) instead of uniformly (seeded; stamped into the\n\
         summary), concentrating load on a few pools to exercise the routed\n\
         server's steal path.\n\
         --trace writes the client-side chrome://tracing span export to FILE\n\
         after the run. --scrape sends no load: it asks a running server for\n\
         one live stats scrape in the given format and prints it."
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ClientCfg::default();
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut scrape_fmt: Option<ScrapeFormat> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--addr" => cfg.addr = val(&mut args),
            "--rate" => cfg.rate = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--requests" => cfg.requests = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--conns" => cfg.conns = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--cross" => cfg.cross_prob = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--shard-skew" => cfg.shard_skew = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--zero-sum" => cfg.zero_sum = true,
            "--json" => json = true,
            "--trace" => trace_out = Some(val(&mut args)),
            "--scrape" => {
                scrape_fmt = Some(match val(&mut args).as_str() {
                    "json" => ScrapeFormat::Json,
                    "prom" => ScrapeFormat::Prom,
                    "series" => ScrapeFormat::Series,
                    _ => usage(),
                })
            }
            _ => usage(),
        }
    }

    if let Some(format) = scrape_fmt {
        match scrape(&cfg.addr, format) {
            Ok(body) => {
                print!("{}", String::from_utf8_lossy(&body));
                return;
            }
            Err(e) => {
                eprintln!("drtm-client: scrape failed: {e}");
                std::process::exit(1);
            }
        }
    }

    match run_client(&cfg) {
        Ok(r) => {
            if json {
                println!("{}", r.to_json());
            } else {
                println!(
                    "sent {}  committed {}  aborted {}  rejected {}",
                    r.sent, r.committed, r.aborted, r.rejected
                );
                println!(
                    "goodput {:.0} txn/s over {:.1} ms (shard skew {:.2})",
                    r.goodput,
                    r.elapsed_ns as f64 / 1e6,
                    r.shard_skew
                );
                println!(
                    "latency (admitted, from scheduled arrival): mean {:.1} us, p50 {:.1} us, p99 {:.1} us, p999 {:.1} us, max {:.1} us",
                    r.latency.mean() / 1e3,
                    r.latency.quantile(0.5) as f64 / 1e3,
                    r.latency.quantile(0.99) as f64 / 1e3,
                    r.latency.quantile(0.999) as f64 / 1e3,
                    r.latency.max() as f64 / 1e3
                );
            }
            if let Some(path) = trace_out {
                let json = drtm_obs::trace::export_chrome_json();
                match std::fs::write(&path, &json) {
                    Ok(()) => eprintln!("drtm-client: trace written to {path}"),
                    Err(e) => eprintln!("drtm-client: trace write failed: {e}"),
                }
            }
        }
        Err(e) => {
            eprintln!("drtm-client: {e}");
            std::process::exit(1);
        }
    }
}
