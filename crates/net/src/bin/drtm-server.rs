//! `drtm-server` — boots the DrTM+R TCP serving front-end and runs
//! until SIGINT/SIGTERM, then drains gracefully and prints a final
//! stats scrape (text; `--prom`/`--json` for machine formats).

use std::time::Duration;

use drtm_core::RoutePolicy;
use drtm_net::server::{Server, ServerCfg};

fn usage() -> ! {
    eprintln!(
        "usage: drtm-server [--addr A] [--nodes N] [--accounts N] [--replicas N]\n\
         \x20                 [--routines N] [--high-water N] [--window N]\n\
         \x20                 [--route on|off] [--steal-reserve N]\n\
         \x20                 [--sample-ms N] [--trace FILE] [--audit] [--prom|--json]\n\
         Serves SmallBank transactions over the drtm-net wire protocol until\n\
         SIGINT/SIGTERM, then drains in-flight work and prints a final scrape.\n\
         While running, clients can scrape live stats with a StatsRequest\n\
         frame (see drtm-client --scrape). --route on dispatches each request\n\
         to the pool owning the majority of its shards (per-pool queues with\n\
         bounded work stealing; --steal-reserve is the per-queue steal floor);\n\
         off (default, also via DRTM_ROUTE) keeps the one shared queue.\n\
         --sample-ms sets the in-server time-series sampler period (0\n\
         disables). --trace writes the server's chrome://tracing span export\n\
         to FILE on drain (head-sampled; set DRTM_TRACE_SAMPLE=1 to trace\n\
         every request). --audit sums every account after the drain and\n\
         checks conservation (meaningful when clients send a zero-sum mix)."
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerCfg {
        addr: "127.0.0.1:7070".into(),
        ..Default::default()
    };
    // DRTM_ROUTE sets the default dispatcher; --route overrides it.
    if let Ok(v) = std::env::var("DRTM_ROUTE") {
        cfg.route = RoutePolicy::parse(&v).unwrap_or_else(|| usage());
    }
    let mut audit = false;
    let mut format = "text";
    let mut trace_out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let val = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--addr" => cfg.addr = val(&mut args),
            "--nodes" => cfg.nodes = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--accounts" => cfg.accounts = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--replicas" => cfg.replicas = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--routines" => cfg.routines = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--high-water" => cfg.high_water = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--window" => cfg.window = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--route" => cfg.route = RoutePolicy::parse(&val(&mut args)).unwrap_or_else(|| usage()),
            "--steal-reserve" => {
                cfg.steal_reserve = val(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--sample-ms" => cfg.sample_ms = val(&mut args).parse().unwrap_or_else(|_| usage()),
            "--trace" => trace_out = Some(val(&mut args)),
            "--audit" => audit = true,
            "--prom" => format = "prom",
            "--json" => format = "json",
            _ => usage(),
        }
    }

    drtm_base::shutdown::install();
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("drtm-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("drtm-server: listening on {}", server.local_addr());

    while !drtm_base::shutdown::requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("drtm-server: draining...");
    let initial = server.initial_total();
    let drained = server.shutdown();
    let (snap, cluster, sb) = (drained.snap, drained.cluster, drained.sb);
    eprintln!(
        "drtm-server: drained at virtual t={:.3}s",
        drained.virtual_ns as f64 / 1e9
    );
    match format {
        "prom" => print!("{}", drtm_obs::expo::render_prometheus(&snap)),
        "json" => println!("{}", drtm_obs::expo::render_json(&snap)),
        _ => print!("{}", drtm_obs::expo::render_text(&snap)),
    }
    if let Some(path) = trace_out {
        let json = drtm_obs::trace::export_chrome_json();
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("drtm-server: trace written to {path}"),
            Err(e) => eprintln!("drtm-server: trace write failed: {e}"),
        }
    }
    if audit {
        let total = Server::audit_total(&cluster, &sb);
        if total == initial {
            eprintln!("drtm-server: conservation audit OK (total {total})");
        } else {
            eprintln!("drtm-server: CONSERVATION VIOLATION: {total} != {initial}");
            std::process::exit(1);
        }
    }
}
