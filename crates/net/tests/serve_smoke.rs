//! End-to-end serving-tier smoke tests: a real TCP server on loopback,
//! a real open-loop client, overload past the admission high-water
//! mark, and a conservation audit after the graceful drain.

use drtm_net::loadgen::{run_client, ClientCfg};
use drtm_net::server::{Server, ServerCfg};

/// The ISSUE's acceptance scenario in miniature: a seeded burst far
/// past the admission high-water mark must (a) shed load with fast
/// rejects rather than queueing without bound, (b) keep p99 latency of
/// *admitted* requests bounded, (c) conserve money under a zero-sum
/// mix, and (d) shut down cleanly with the counters visible in the
/// final scrape.
#[test]
fn overload_burst_sheds_conserves_and_drains() {
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 200,
        replicas: 1,
        routines: 2,
        high_water: 16,
        window: 2_048, // readers never throttle: the queue is the choke
        ..Default::default()
    })
    .expect("bind loopback");
    let initial = server.initial_total();

    let report = run_client(&ClientCfg {
        addr: server.local_addr().to_string(),
        rate: 0.0, // all-at-once burst: offered rate >> capacity
        requests: 4_000,
        seed: 7,
        conns: 4,
        zero_sum: true,
        cross_prob: 0.2,
    })
    .expect("client run");

    assert_eq!(report.sent, 4_000);
    assert_eq!(
        report.committed + report.aborted + report.rejected,
        4_000,
        "every request got exactly one response"
    );
    assert!(report.committed > 0, "some requests must commit");
    assert!(
        report.rejected > 0,
        "a burst past high-water must shed load: {report:?}"
    );
    // Bounded latency for admitted work: with a 16-deep queue and fast
    // simulated transactions, nothing should wait anywhere near this.
    assert!(
        report.latency.quantile(0.99) < 2_000_000_000,
        "admitted p99 unbounded: {} ns",
        report.latency.quantile(0.99)
    );

    let (snap, cluster, sb) = server.shutdown();
    assert_eq!(snap.net.conns_opened, 4);
    assert_eq!(snap.net.accepted + snap.net.rejected, 4_000);
    assert_eq!(snap.net.rejected, report.rejected);
    assert_eq!(snap.net.completed, snap.net.accepted);
    assert_eq!(snap.net.in_flight, 0, "drain left work in flight");
    assert_eq!(snap.net.queue_depth, 0, "drain left a backlog");
    assert_eq!(
        snap.committed, report.committed,
        "engine commits match client view"
    );
    assert_eq!(snap.net.queue_wait_ns.count, snap.net.accepted);

    // Zero-sum mix: the money supply is exactly conserved.
    assert_eq!(
        Server::audit_total(&cluster, &sb),
        initial,
        "conservation violated"
    );

    // The counters surface in every exposition format.
    let prom = drtm_obs::expo::render_prometheus(&snap);
    assert!(prom.contains(&format!("drtm_net_rejected_total {}", snap.net.rejected)));
    let json = drtm_obs::expo::render_json(&snap);
    drtm_obs::jsonlint::validate(&json).expect("stats json parses");
    assert!(json.contains("\"net\":{"));
}

/// A paced run under capacity: nothing is shed, every request commits
/// or user-aborts, and two identically-seeded clients offer identical
/// schedules (open-loop determinism end to end).
#[test]
fn paced_run_under_capacity_rejects_nothing() {
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 400,
        replicas: 1,
        routines: 4,
        high_water: 512,
        window: 256,
        ..Default::default()
    })
    .expect("bind loopback");

    let report = run_client(&ClientCfg {
        addr: server.local_addr().to_string(),
        rate: 2_000.0,
        requests: 600,
        seed: 11,
        conns: 2,
        zero_sum: false,
        cross_prob: 0.1,
    })
    .expect("client run");

    assert_eq!(report.sent, 600);
    assert_eq!(report.rejected, 0, "under-capacity load must not shed");
    assert_eq!(report.committed + report.aborted, 600);
    let (snap, _, _) = server.shutdown();
    assert_eq!(snap.net.accepted, 600);
    assert_eq!(snap.net.rejected, 0);
    assert_eq!(snap.net.conns_closed, 2);
}
