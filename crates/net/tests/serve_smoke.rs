//! End-to-end serving-tier smoke tests: a real TCP server on loopback,
//! a real open-loop client, overload past the admission high-water
//! mark, and a conservation audit after the graceful drain.

use drtm_core::RoutePolicy;
use drtm_net::loadgen::{run_client, scrape, ClientCfg};
use drtm_net::proto::ScrapeFormat;
use drtm_net::server::{Server, ServerCfg};

/// Pulls the integer value of `"key":N` out of the `"net":{...}`
/// object of a stats-JSON scrape.
fn net_counter(json: &str, key: &str) -> u64 {
    let net = json.split("\"net\":{").nth(1).expect("net section");
    let tail = net
        .split(&format!("\"{key}\":"))
        .nth(1)
        .unwrap_or_else(|| panic!("missing {key} in {net}"));
    tail.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("integer counter")
}

/// The ISSUE's acceptance scenario in miniature: a seeded burst far
/// past the admission high-water mark must (a) shed load with fast
/// rejects rather than queueing without bound, (b) keep p99 latency of
/// *admitted* requests bounded, (c) conserve money under a zero-sum
/// mix, and (d) shut down cleanly with the counters visible in the
/// final scrape.
#[test]
fn overload_burst_sheds_conserves_and_drains() {
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 200,
        replicas: 1,
        routines: 2,
        high_water: 16,
        window: 2_048, // readers never throttle: the queue is the choke
        ..Default::default()
    })
    .expect("bind loopback");
    let initial = server.initial_total();

    let report = run_client(&ClientCfg {
        addr: server.local_addr().to_string(),
        rate: 0.0, // all-at-once burst: offered rate >> capacity
        requests: 4_000,
        seed: 7,
        conns: 4,
        zero_sum: true,
        cross_prob: 0.2,
        shard_skew: 0.0,
    })
    .expect("client run");

    assert_eq!(report.sent, 4_000);
    assert_eq!(
        report.committed + report.aborted + report.rejected,
        4_000,
        "every request got exactly one response"
    );
    assert!(report.committed > 0, "some requests must commit");
    assert!(
        report.rejected > 0,
        "a burst past high-water must shed load: {report:?}"
    );
    // Bounded latency for admitted work: with a 16-deep queue and fast
    // simulated transactions, nothing should wait anywhere near this.
    assert!(
        report.latency.quantile(0.99) < 2_000_000_000,
        "admitted p99 unbounded: {} ns",
        report.latency.quantile(0.99)
    );

    let drained = server.shutdown();
    let (snap, cluster, sb) = (drained.snap, drained.cluster, drained.sb);
    assert!(drained.virtual_ns > 0, "pools advanced virtual time");
    assert_eq!(snap.net.conns_opened, 4);
    assert_eq!(snap.net.accepted + snap.net.rejected, 4_000);
    assert_eq!(snap.net.rejected, report.rejected);
    assert_eq!(snap.net.completed, snap.net.accepted);
    assert_eq!(snap.net.in_flight, 0, "drain left work in flight");
    assert_eq!(snap.net.queue_depth, 0, "drain left a backlog");
    assert_eq!(
        snap.committed, report.committed,
        "engine commits match client view"
    );
    assert_eq!(snap.net.queue_wait_ns.count, snap.net.accepted);

    // Zero-sum mix: the money supply is exactly conserved.
    assert_eq!(
        Server::audit_total(&cluster, &sb),
        initial,
        "conservation violated"
    );

    // The counters surface in every exposition format.
    let prom = drtm_obs::expo::render_prometheus(&snap);
    assert!(prom.contains(&format!("drtm_net_rejected_total {}", snap.net.rejected)));
    let json = drtm_obs::expo::render_json(&snap);
    drtm_obs::jsonlint::validate(&json).expect("stats json parses");
    assert!(json.contains("\"net\":{"));
}

/// A paced run under capacity: nothing is shed, every request commits
/// or user-aborts, and two identically-seeded clients offer identical
/// schedules (open-loop determinism end to end).
#[test]
fn paced_run_under_capacity_rejects_nothing() {
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 400,
        replicas: 1,
        routines: 4,
        high_water: 512,
        window: 256,
        ..Default::default()
    })
    .expect("bind loopback");

    let report = run_client(&ClientCfg {
        addr: server.local_addr().to_string(),
        rate: 2_000.0,
        requests: 600,
        seed: 11,
        conns: 2,
        zero_sum: false,
        cross_prob: 0.1,
        shard_skew: 0.0,
    })
    .expect("client run");

    assert_eq!(report.sent, 600);
    assert_eq!(report.rejected, 0, "under-capacity load must not shed");
    assert_eq!(report.committed + report.aborted, 600);
    let snap = server.shutdown().snap;
    assert_eq!(snap.net.accepted, 600);
    assert_eq!(snap.net.rejected, 0);
    assert_eq!(snap.net.conns_closed, 2);
}

/// A live `StatsRequest` scrape mid-burst and the drain scrape share
/// one rendering path, so cumulative counters must agree: every
/// counter read live is ≤ its drain value, and successive live scrapes
/// are themselves monotone. Also exercises all three scrape formats
/// against a running server.
#[test]
fn live_scrape_mid_burst_agrees_with_drain() {
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 200,
        replicas: 1,
        routines: 2,
        high_water: 64,
        window: 2_048,
        sample_ms: 1,
        ..Default::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    let live = std::thread::scope(|scope| {
        let client = {
            let addr = addr.clone();
            scope.spawn(move || {
                run_client(&ClientCfg {
                    addr,
                    rate: 0.0,
                    requests: 4_000,
                    seed: 13,
                    conns: 4,
                    zero_sum: true,
                    cross_prob: 0.2,
                    shard_skew: 0.0,
                })
                .expect("client run")
            })
        };
        // Scrape while the burst is (very likely) still in flight; the
        // monotonicity assertions hold regardless of interleaving.
        let mut live = Vec::new();
        for _ in 0..3 {
            let body = scrape(&addr, ScrapeFormat::Json).expect("live scrape");
            live.push(String::from_utf8(body).expect("utf8 json"));
        }
        let _ = client.join().expect("client thread");
        // One more after the run but before the drain.
        live.push(String::from_utf8(scrape(&addr, ScrapeFormat::Json).unwrap()).unwrap());
        live
    });

    // The non-JSON formats also serve live.
    let prom = String::from_utf8(scrape(&addr, ScrapeFormat::Prom).unwrap()).unwrap();
    assert!(prom.contains("drtm_net_accepted_total"));
    let series = String::from_utf8(scrape(&addr, ScrapeFormat::Series).unwrap()).unwrap();
    drtm_obs::jsonlint::validate(&series).expect("series json parses");
    assert!(series.contains("\"series\":["));

    let snap = server.shutdown().snap;
    for json in &live {
        drtm_obs::jsonlint::validate(json).expect("live scrape parses");
    }
    for key in ["accepted", "rejected", "completed", "conns_opened"] {
        let mut prev = 0;
        for json in &live {
            let v = net_counter(json, key);
            assert!(v >= prev, "{key} went backwards live: {v} < {prev}");
            prev = v;
        }
        let drain = match key {
            "accepted" => snap.net.accepted,
            "rejected" => snap.net.rejected,
            "completed" => snap.net.completed,
            _ => snap.net.conns_opened,
        };
        assert!(
            drain >= prev,
            "{key}: drain {drain} below last live scrape {prev}"
        );
    }
    // The post-run live scrape saw the whole burst accounted for.
    let last = live.last().unwrap();
    assert_eq!(
        net_counter(last, "accepted") + net_counter(last, "rejected"),
        4_000
    );
    // The sampler populated the time-series ring, and its cumulative
    // columns are monotone too.
    let ts = server_series_check(&series);
    assert!(ts > 0, "sampler produced no samples");
}

/// Asserts the time-series scrape's cumulative columns are monotone
/// and returns the sample count.
fn server_series_check(series: &str) -> usize {
    let mut count = 0;
    let mut prev = (0u64, 0u64, 0u64);
    for obj in series.split("{\"wall_ms\":").skip(1) {
        let grab = |key: &str| -> u64 {
            obj.split(&format!("\"{key}\":"))
                .nth(1)
                .map(|t| {
                    t.chars()
                        .take_while(|c| c.is_ascii_digit())
                        .collect::<String>()
                        .parse()
                        .unwrap_or(0)
                })
                .unwrap_or(0)
        };
        let cur = (grab("accepted"), grab("rejected"), grab("completed"));
        assert!(
            cur.0 >= prev.0 && cur.1 >= prev.1 && cur.2 >= prev.2,
            "time series not monotone: {cur:?} after {prev:?}"
        );
        prev = cur;
        count += 1;
    }
    count
}

/// Stats-only traffic is answered at the connection reader, never the
/// engine: any number of live scrapes must leave the submit queue
/// untouched — no admission, no delivery, no slot held — so an operator
/// polling metrics can never displace transaction work behind a full
/// queue. (The pool's drain audit separately asserts
/// `accepted == delivered`, which a stats request sneaking through the
/// queue would break.)
#[test]
fn stats_scrapes_never_consume_submit_queue_slots() {
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 100,
        replicas: 1,
        routines: 2,
        high_water: 2, // tiny queue: one leaked slot would reject scrapes
        ..Default::default()
    })
    .expect("bind loopback");
    let addr = server.local_addr().to_string();

    for format in [ScrapeFormat::Json, ScrapeFormat::Prom, ScrapeFormat::Series] {
        for _ in 0..16 {
            scrape(&addr, format).expect("stats scrape answered");
        }
    }
    // Live view: nothing was admitted (or shed) on behalf of scrapes.
    let json = String::from_utf8(scrape(&addr, ScrapeFormat::Json).unwrap()).unwrap();
    assert_eq!(net_counter(&json, "accepted"), 0);
    assert_eq!(net_counter(&json, "rejected"), 0);

    let snap = server.shutdown().snap;
    assert_eq!(snap.net.accepted, 0, "stats requests consumed queue slots");
    assert_eq!(snap.net.rejected, 0, "stats requests hit admission control");
    assert_eq!(snap.net.completed, 0, "stats requests reached a routine");
    assert_eq!(snap.net.in_flight, 0);
    assert_eq!(snap.net.queue_depth, 0);
}

/// The routed dispatcher under the same overload burst: a skewed
/// offered load lands on a few home queues, sibling pools steal, the
/// burst sheds through the two-level test, and the drain holds the
/// conservation audit plus the per-queue `accepted == delivered`
/// invariant (asserted inside `serve_group`; re-checked here from the
/// scrape's route section).
#[test]
fn routed_burst_steals_sheds_conserves_and_drains() {
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 200,
        replicas: 1,
        routines: 2,
        high_water: 16,
        window: 2_048,
        route: RoutePolicy::Routed,
        steal_reserve: 2,
        ..Default::default()
    })
    .expect("bind loopback");
    let initial = server.initial_total();

    let report = run_client(&ClientCfg {
        addr: server.local_addr().to_string(),
        rate: 0.0,
        requests: 4_000,
        seed: 7,
        conns: 4,
        zero_sum: true,
        cross_prob: 0.2,
        shard_skew: 0.9, // skewed home shards: the steal path must fire
    })
    .expect("client run");

    assert_eq!(report.sent, 4_000);
    assert_eq!(
        report.committed + report.aborted + report.rejected,
        4_000,
        "every request got exactly one response"
    );
    assert!(report.committed > 0);
    assert!(report.rejected > 0, "a burst past high-water must shed");

    let drained = server.shutdown();
    let snap = &drained.snap;
    assert!(drained.virtual_ns > 0);
    assert!(snap.route.enabled, "routed server must report route stats");
    assert_eq!(
        snap.route.local + snap.route.remote,
        snap.net.accepted,
        "every admission was routed exactly once"
    );
    assert!(
        snap.route.local > 0,
        "a zero-sum SmallBank mix has single-home requests"
    );
    assert_eq!(
        snap.route.shed_queue + snap.route.shed_global,
        snap.net.rejected,
        "every shed is charged to exactly one level"
    );
    assert!(
        snap.route.depths.iter().all(|&d| d == 0),
        "drain left per-pool backlog: {:?}",
        snap.route.depths
    );
    assert_eq!(
        snap.net.completed, snap.net.accepted,
        "accepted == delivered == completed across all queues"
    );
    assert_eq!(snap.net.in_flight, 0);
    assert_eq!(
        Server::audit_total(&drained.cluster, &drained.sb),
        initial,
        "conservation violated under routing"
    );

    // Routing counters surface in the machine formats.
    let prom = drtm_obs::expo::render_prometheus(snap);
    assert!(prom.contains("drtm_route_enabled 1"));
    assert!(prom.contains(&format!("drtm_route_local_total {}", snap.route.local)));
    let json = drtm_obs::expo::render_json(snap);
    drtm_obs::jsonlint::validate(&json).expect("stats json parses");
    assert!(json.contains("\"route\":{\"enabled\":true"));
}

/// Chaos on the steal path: crash one pool's simulated machine while
/// its queue still holds backlog. The pool keeps draining (transactions
/// touching the dead node abort but still answer), siblings keep
/// stealing, recovery restores the node, and the drain audit holds —
/// `accepted == delivered` per queue with zero in-flight leftovers.
#[test]
fn routed_drain_survives_node_crash_mid_backlog() {
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 200,
        replicas: 2, // a backup exists: recovery can restore node 1
        routines: 2,
        high_water: 64,
        window: 2_048,
        route: RoutePolicy::Routed,
        steal_reserve: 2,
        ..Default::default()
    })
    .expect("bind loopback");

    let addr = server.local_addr().to_string();
    let report = std::thread::scope(|scope| {
        let client = scope.spawn(move || {
            run_client(&ClientCfg {
                addr,
                rate: 0.0, // burst: queues hold backlog when the crash lands
                requests: 2_000,
                seed: 31,
                conns: 4,
                zero_sum: true,
                cross_prob: 0.2,
                shard_skew: 0.9,
            })
            .expect("client run")
        });
        // Land the crash mid-drain, then recover while load continues.
        std::thread::sleep(std::time::Duration::from_millis(20));
        server.crash_node(1);
        std::thread::sleep(std::time::Duration::from_millis(20));
        server.recover_node(1);
        client.join().expect("client thread")
    });

    assert_eq!(
        report.committed + report.aborted + report.rejected,
        2_000,
        "every request answered through the crash"
    );
    let drained = server.shutdown();
    let snap = &drained.snap;
    // The serve_group drain already asserted accepted == delivered per
    // queue (it would have panicked the pump thread otherwise); the
    // scrape-level restatement:
    assert_eq!(snap.net.completed, snap.net.accepted);
    assert_eq!(snap.net.in_flight, 0);
    assert!(snap.route.depths.iter().all(|&d| d == 0));
    assert_eq!(snap.route.local + snap.route.remote, snap.net.accepted);
}

/// The ISSUE's acceptance scenario: requests against a running server
/// produce an exported trace in which one trace id links the
/// client-send span, the queue-wait span, the routine span, the
/// commit-phase spans, and the request flow arrows.
#[test]
fn single_request_trace_links_client_queue_routine_and_phases() {
    use drtm_obs::trace::{self, EvPhase, EventKind};

    // Trace every request: this test asserts on complete span trees,
    // not on the sampling budget (covered by obs unit tests).
    trace::set_sample_every(1);
    let server = Server::start(ServerCfg {
        nodes: 2,
        accounts: 200,
        replicas: 1,
        routines: 2,
        high_water: 256,
        window: 64,
        ..Default::default()
    })
    .expect("bind loopback");

    let report = run_client(&ClientCfg {
        addr: server.local_addr().to_string(),
        rate: 5_000.0,
        requests: 64,
        seed: 23,
        conns: 1,
        zero_sum: true,
        cross_prob: 0.2,
        shard_skew: 0.0,
    })
    .expect("client run");
    assert!(report.committed > 0);
    let _ = server.shutdown();

    // Group every traced event by trace id across all thread rings.
    let mut by_id: std::collections::HashMap<u64, Vec<drtm_obs::trace::TraceEvent>> =
        std::collections::HashMap::new();
    for (_, evs) in trace::export_streams() {
        for ev in evs {
            if ev.id != 0 {
                by_id.entry(ev.id).or_default().push(ev);
            }
        }
    }
    let has = |evs: &[drtm_obs::trace::TraceEvent], label: &str, ph: EvPhase| {
        evs.iter().any(|e| e.label == label && e.ph == ph)
    };
    // At least one request's whole journey survived the rings: client
    // send/receive, queue wait, routine execution, commit phases, and
    // the flow arrows tying them into one tree in the trace viewer.
    let complete = by_id.values().find(|evs| {
        has(evs, "client", EvPhase::Begin)
            && has(evs, "client", EvPhase::End)
            && has(evs, "queue", EvPhase::Begin)
            && has(evs, "queue", EvPhase::End)
            && has(evs, "routine", EvPhase::Begin)
            && has(evs, "routine", EvPhase::End)
            && evs
                .iter()
                .any(|e| e.kind == EventKind::Phase && e.ph == EvPhase::Complete)
            && has(evs, trace::FLOW_LABEL, EvPhase::FlowStart)
            && has(evs, trace::FLOW_LABEL, EvPhase::FlowEnd)
    });
    assert!(
        complete.is_some(),
        "no trace id links client+queue+routine+phase spans; ids seen: {}",
        by_id.len()
    );
    // A committed read-write request carries the full phase set.
    let phases: std::collections::HashSet<&str> = by_id
        .values()
        .flatten()
        .filter(|e| e.kind == EventKind::Phase)
        .map(|e| e.label)
        .collect();
    for want in ["execute", "lock", "validate", "htm", "unlock"] {
        assert!(
            phases.contains(want),
            "missing phase span {want}: {phases:?}"
        );
    }
    // The rendered export is valid JSON and shows the flow arrows.
    let json = trace::export_chrome_json();
    drtm_obs::jsonlint::validate(&json).expect("trace json parses");
    assert!(json.contains("\"ph\":\"s\"") && json.contains("\"ph\":\"f\""));
}
