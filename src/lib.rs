//! DrTM+R — fast and general distributed transactions using (simulated)
//! RDMA and HTM.
//!
//! This is the facade crate: it re-exports the public API of every
//! subsystem so applications can depend on a single crate. See the
//! repository `README.md` for a tour and `DESIGN.md` for the mapping from
//! the EuroSys'16 paper to modules.
//!
//! # Examples
//!
//! ```
//! use drtm::core::cluster::{DrtmCluster, EngineOpts};
//! use drtm::store::TableSpec;
//!
//! // A 2-machine cluster with one hash table of 16-byte values.
//! let cluster = DrtmCluster::new(
//!     2,
//!     &[TableSpec::hash(0, 256, 16)],
//!     EngineOpts::builder().region_size(1 << 20).build(),
//! );
//! cluster.seed_record(0, 0, 1, &[7u8; 16]);
//! cluster.seed_record(1, 0, 2, &[9u8; 16]);
//!
//! // A distributed read-write transaction from machine 0.
//! let mut worker = cluster.worker(0, 42);
//! worker
//!     .run(|t| {
//!         let local = t.read(0, 0, 1)?; // HTM-protected local read.
//!         t.write(1, 0, 2, local) // One-sided RDMA at commit.
//!     })
//!     .unwrap();
//!
//! let v = worker.run_ro(|t| t.read(1, 0, 2)).unwrap();
//! assert_eq!(v, vec![7u8; 16]);
//! ```

pub use drtm_base as base;
pub use drtm_baselines as baselines;
pub use drtm_cluster as cluster;
pub use drtm_core as core;
pub use drtm_htm as htm;
pub use drtm_net as net;
pub use drtm_rdma as rdma;
pub use drtm_store as store;
pub use drtm_workloads as workloads;
