//! Cross-crate serializability tests through the facade crate: invariant
//! preservation under concurrent distributed transactions.

use std::sync::Arc;

use drtm::core::cluster::{DrtmCluster, EngineOpts};
use drtm::core::txn::TxnError;
use drtm::store::TableSpec;

const T: u32 = 0;

fn val(x: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[..8].copy_from_slice(&x.to_le_bytes());
    v
}

fn num(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

fn key(shard: usize, k: u64) -> u64 {
    (shard as u64) << 32 | k
}

fn build(nodes: usize, replicas: usize, keys: u64) -> Arc<DrtmCluster> {
    let opts = EngineOpts::builder()
        .replicas(replicas)
        .region_size(4 << 20)
        .build();
    let c = DrtmCluster::new(nodes, &[TableSpec::hash(T, 8192, 16)], opts);
    for shard in 0..nodes {
        for k in 0..keys {
            c.seed_record(shard, T, key(shard, k), &val(1000));
        }
    }
    c
}

/// Zero-sum transfers across three machines conserve the global total,
/// with replication enabled and concurrent auxiliary truncation.
#[test]
fn replicated_bank_conserves_money() {
    let c = build(3, 3, 16);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let aux = {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                for n in 0..3 {
                    c.truncate_step(n);
                }
                std::thread::yield_now();
            }
        })
    };
    let mut handles = Vec::new();
    for node in 0..3usize {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let mut w = c.worker(node, node as u64 + 3);
            let mut rng = drtm::base::SplitMix64::new(node as u64 * 13 + 5);
            for _ in 0..120 {
                let (s1, k1) = (rng.below(3) as usize, rng.below(16));
                let (s2, k2) = (rng.below(3) as usize, rng.below(16));
                if (s1, k1) == (s2, k2) {
                    continue;
                }
                let _ = w.run(|t| {
                    let a = num(&t.read(s1, T, key(s1, k1))?);
                    let b = num(&t.read(s2, T, key(s2, k2))?);
                    if a < 7 {
                        return Err(TxnError::UserAbort);
                    }
                    t.write(s1, T, key(s1, k1), val(a - 7))?;
                    t.write(s2, T, key(s2, k2), val(b + 7))
                });
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    aux.join().unwrap();

    let mut w = c.worker(0, 99);
    let mut total = 0;
    for shard in 0..3usize {
        for k in 0..16 {
            total += num(&w.run_ro(|t| t.read(shard, T, key(shard, k))).unwrap());
        }
    }
    assert_eq!(total, 3 * 16 * 1000);
}

/// Read-only snapshots never observe a half-applied distributed
/// transaction, even while writers continuously flip record pairs on
/// different machines.
#[test]
fn ro_snapshots_are_atomic_across_machines() {
    let c = build(2, 1, 4);
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let writer = {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut w = c.worker(0, 1);
            let mut x = 0u64;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                x += 1;
                w.run(|t| {
                    t.write(0, T, key(0, 0), val(1000 + x))?;
                    t.write(1, T, key(1, 0), val(1000 - x % 1000))
                })
                .unwrap();
                std::thread::yield_now();
            }
            x
        })
    };
    let mut r = c.worker(1, 2);
    for _ in 0..100 {
        let (a, b) = r
            .run_ro(|t| {
                Ok((
                    num(&t.read(0, T, key(0, 0))?),
                    num(&t.read(1, T, key(1, 0))?),
                ))
            })
            .unwrap();
        let x = a - 1000;
        assert_eq!(b, 1000 - x % 1000, "torn snapshot: a={a} b={b}");
    }
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    writer.join().unwrap();
}

/// Lost-update freedom: concurrent increments from every machine to a
/// single hot record all survive.
#[test]
fn no_lost_updates_on_hot_record() {
    let c = build(3, 1, 1);
    let mut handles = Vec::new();
    for node in 0..3usize {
        let c = Arc::clone(&c);
        handles.push(std::thread::spawn(move || {
            let mut w = c.worker(node, node as u64);
            for _ in 0..150 {
                w.run(|t| {
                    let v = num(&t.read(1, T, key(1, 0))?);
                    t.write(1, T, key(1, 0), val(v + 1))
                })
                .unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let mut w = c.worker(0, 9);
    assert_eq!(
        num(&w.run_ro(|t| t.read(1, T, key(1, 0))).unwrap()),
        1000 + 450
    );
}

/// Inserts and deletes take effect atomically with the surrounding
/// transaction and are visible across machines.
#[test]
fn insert_delete_visibility_across_machines() {
    let c = build(2, 1, 4);
    let mut w0 = c.worker(0, 1);
    w0.run(|t| {
        let v = num(&t.read(1, T, key(1, 0))?);
        t.insert(1, T, key(1, 100), val(v));
        Ok(())
    })
    .unwrap();
    let mut w1 = c.worker(1, 2);
    assert_eq!(
        num(&w1.run_ro(|t| t.read(1, T, key(1, 100))).unwrap()),
        1000
    );
    w1.run(|t| {
        t.delete(1, T, key(1, 100));
        Ok(())
    })
    .unwrap();
    assert_eq!(
        w0.run_ro(|t| t.read(1, T, key(1, 100))).unwrap_err(),
        TxnError::NotFound
    );
}

/// Property: the completion interleavings of batched C.1 lock and C.6
/// unlock doorbells preserve serializability. Concurrent zero-sum
/// transfers debit two accounts and credit two others across three
/// machines — so commits routinely ring multi-WR lock, update and
/// unlock batches per destination — and the global total must be
/// conserved under the doorbell-batched path exactly as under the
/// legacy blocking path, across seeds and replica counts.
#[test]
fn batched_fanout_interleavings_preserve_serializability() {
    for case in 0..3u64 {
        for batched in [false, true] {
            let opts = EngineOpts::builder()
                .replicas(1 + (case % 3) as usize)
                .region_size(4 << 20)
                .batched_verbs(batched)
                .build();
            let c = DrtmCluster::new(3, &[TableSpec::hash(T, 8192, 16)], opts);
            for shard in 0..3usize {
                for k in 0..8u64 {
                    c.seed_record(shard, T, key(shard, k), &val(1000));
                }
            }
            let mut handles = Vec::new();
            for node in 0..3usize {
                let c = Arc::clone(&c);
                handles.push(std::thread::spawn(move || {
                    let mut w = c.worker(node, case * 7 + node as u64 + 1);
                    let mut rng = drtm::base::SplitMix64::new(case * 131 + node as u64);
                    for _ in 0..60 {
                        // Four distinct accounts: two debited, two credited.
                        let mut picks: Vec<(usize, u64)> = Vec::new();
                        while picks.len() < 4 {
                            let p = (rng.below(3) as usize, rng.below(8));
                            if !picks.contains(&p) {
                                picks.push(p);
                            }
                        }
                        let _ = w.run(|t| {
                            let mut vals = Vec::new();
                            for &(s, k) in &picks {
                                vals.push(num(&t.read(s, T, key(s, k))?));
                            }
                            if vals[0] < 5 || vals[1] < 5 {
                                return Err(TxnError::UserAbort);
                            }
                            for (i, &(s, k)) in picks.iter().enumerate() {
                                let next = if i < 2 { vals[i] - 5 } else { vals[i] + 5 };
                                t.write(s, T, key(s, k), val(next))?;
                            }
                            Ok(())
                        });
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let mut w = c.worker(0, 99);
            let mut total = 0;
            for shard in 0..3usize {
                for k in 0..8u64 {
                    total += num(&w.run_ro(|t| t.read(shard, T, key(shard, k))).unwrap());
                }
            }
            assert_eq!(total, 3 * 8 * 1000, "case={case} batched={batched}");
        }
    }
}
