//! End-to-end checks of the optimistic replication protocol (§5.1)
//! through the facade crate.

use std::sync::Arc;

use drtm::core::cluster::{DrtmCluster, EngineOpts};
use drtm::core::txn::TxnError;
use drtm::store::record::SEQ_OFF;
use drtm::store::TableSpec;

const T: u32 = 0;

fn val(x: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[..8].copy_from_slice(&x.to_le_bytes());
    v
}

fn num(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

fn build() -> Arc<DrtmCluster> {
    let opts = EngineOpts::builder()
        .replicas(3)
        .region_size(2 << 20)
        .build();
    let c = DrtmCluster::new(3, &[TableSpec::hash(T, 1024, 16)], opts);
    for shard in 0..3 {
        for k in 0..8u64 {
            c.seed_record(shard, T, (shard as u64) << 32 | k, &val(100));
        }
    }
    c
}

/// Sequence numbers are even (committable) whenever no commit is in
/// flight, for local, remote, and fallback commit paths.
#[test]
fn quiescent_sequence_numbers_are_even() {
    let c = build();
    let mut w = c.worker(0, 1);
    // Local write.
    w.run(|t| t.write(0, T, 1, val(1))).unwrap();
    // Remote write.
    w.run(|t| t.write(1, T, 1 << 32 | 1, val(2))).unwrap();
    for (node, key) in [(0usize, 1u64), (1, 1 << 32 | 1)] {
        let off = c.stores[node].get_loc(T, key).unwrap() as usize;
        let seq = c.stores[node].region.load64(off + SEQ_OFF);
        assert_eq!(seq % 2, 0, "node {node} seq {seq}");
        assert!(seq >= 4, "sequence advanced");
    }
}

/// Every write of a committed transaction is logged on every backup of
/// its record's primary — including remote writes and inserts.
#[test]
fn all_writes_reach_all_backups() {
    let c = build();
    let mut w = c.worker(0, 1);
    w.run(|t| {
        t.write(0, T, 0, val(7))?; // Local record: primary 0.
        t.write(2, T, 2 << 32, val(8))?; // Remote record: primary 2.
        t.insert(1, T, (1 << 32) | 99, val(9)); // Insert on primary 1.
        Ok(())
    })
    .unwrap();
    // Backups of 0 are {1, 2}; of 2 are {0, 1}; of 1 are {2, 0}.
    assert_eq!(c.logs.len(1, 0), 1);
    assert_eq!(c.logs.len(2, 0), 1);
    assert_eq!(c.logs.len(0, 2), 1);
    assert_eq!(c.logs.len(1, 2), 1);
    assert_eq!(c.logs.len(2, 1), 1);
    assert_eq!(c.logs.len(0, 1), 1);
}

/// Auxiliary truncation keeps the logs bounded while preserving the
/// backup images' contents.
#[test]
fn truncation_preserves_backup_contents() {
    let c = build();
    let mut w = c.worker(0, 1);
    for i in 0..10u64 {
        w.run(|t| t.write(0, T, 2, val(i))).unwrap();
        if i % 3 == 0 {
            c.truncate_step(1);
            c.truncate_step(2);
        }
    }
    c.truncate_step(1);
    assert!(c.logs.is_empty(1, 0));
    let snap = c.backups.snapshot(1, 0);
    let rec = snap.iter().find(|((_, k), _)| *k == 2).unwrap();
    assert_eq!(num(&rec.1.value), 9, "backup image reflects the last write");
}

/// The visibility/replication race, end to end with a real concurrent
/// writer: a reader that observed a pre-replication (odd) version can
/// only commit after the writer's makeup step.
#[test]
fn odd_version_gates_concurrent_committers() {
    let c = build();
    let off = c.stores[0].get_loc(T, 3).unwrap() as usize;
    let rec = c.stores[0].record(T, off);

    // Freeze the record mid-commit (odd), as a writer between C.4 and
    // R.2 would leave it.
    rec.write_locked(&val(555), 5);

    let mut w = c.worker(0, 2);
    // Optimistic read succeeds...
    let mut txn = w.begin();
    let v = txn.read_local(T, 3).unwrap();
    assert_eq!(num(&v), 555);
    // ...but committing against it fails while the version is odd.
    assert!(matches!(txn.commit(), Err(TxnError::Aborted(_))));

    // Writer finishes replication; the even successor validates.
    let mut txn = w.begin();
    let _ = txn.read_local(T, 3).unwrap();
    rec.set_seq(6);
    // The snapshot was taken at seq 5; (5+1)&!1 == 6 == current: valid.
    txn.commit()
        .expect("read of odd version commits once replicated");
}
