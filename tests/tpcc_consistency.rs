//! TPC-C consistency conditions hold after running the standard mix on
//! every engine, through the public workload API.

use drtm::workloads::audit::tpcc_audit;
use drtm::workloads::driver::{build_tpcc, run_tpcc_on, EngineKind, RunCfg};
use drtm::workloads::tpcc::TpccCfg;

fn cfg(nodes: usize) -> TpccCfg {
    TpccCfg {
        nodes,
        warehouses_per_node: 1,
        customers: 24,
        items: 48,
        init_orders: 5,
        history_buckets: 1 << 12,
        ..Default::default()
    }
}

fn check(engine: EngineKind, nodes: usize, threads: usize, replicas: usize) {
    let cfg = cfg(nodes);
    let run = RunCfg {
        engine,
        threads,
        replicas,
        txns_per_worker: 40,
        ..Default::default()
    };
    let (cluster, calvin) = build_tpcc(&cfg, &run);
    let m = run_tpcc_on(&cfg, &run, &cluster, calvin.as_ref());
    assert!(m.committed > 0, "{engine:?} committed nothing");
    let violations = tpcc_audit(&cluster, &cfg);
    assert!(violations.is_empty(), "{engine:?}: {violations:?}");
}

#[test]
fn drtm_r_distributed() {
    check(EngineKind::DrtmR, 2, 2, 1);
}

#[test]
fn drtm_r_replicated() {
    check(EngineKind::DrtmR, 3, 1, 3);
}

#[test]
fn drtm_baseline() {
    check(EngineKind::Drtm, 2, 1, 1);
}

#[test]
fn calvin_baseline() {
    check(EngineKind::Calvin, 2, 1, 1);
}

#[test]
fn silo_baseline() {
    check(EngineKind::Silo, 1, 2, 1);
}

/// High-contention configuration (all threads in one warehouse) still
/// produces a consistent database.
#[test]
fn high_contention_stays_consistent() {
    let cfg = cfg(1);
    let run = RunCfg {
        engine: EngineKind::DrtmR,
        threads: 3,
        replicas: 1,
        txns_per_worker: 40,
        ..Default::default()
    };
    let (cluster, _) = build_tpcc(&cfg, &run);
    let m = run_tpcc_on(&cfg, &run, &cluster, None);
    assert!(m.committed > 0);
    let violations = tpcc_audit(&cluster, &cfg);
    assert!(violations.is_empty(), "{violations:?}");
}

/// 100% cross-warehouse new-orders (the Figure 17 extreme) stay
/// consistent.
#[test]
fn all_distributed_new_orders_stay_consistent() {
    let cfg = cfg(2);
    let run = RunCfg {
        engine: EngineKind::DrtmR,
        threads: 2,
        replicas: 1,
        txns_per_worker: 30,
        cross_override: Some(1.0),
        ..Default::default()
    };
    let (cluster, _) = build_tpcc(&cfg, &run);
    let m = run_tpcc_on(&cfg, &run, &cluster, None);
    assert!(m.committed > 0);
    let violations = tpcc_audit(&cluster, &cfg);
    assert!(violations.is_empty(), "{violations:?}");
}
