//! Chaos testing: randomized operations interleaved with machine
//! crashes and recoveries, checked against a sequential model.

use std::sync::Arc;

use drtm::base::SplitMix64;
use drtm::core::cluster::{DrtmCluster, EngineOpts};
use drtm::core::recovery::recover_node;
use drtm::core::txn::TxnError;
use drtm::store::TableSpec;

const T: u32 = 0;
const NODES: usize = 4;
const KEYS: u64 = 10;

fn val(x: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[..8].copy_from_slice(&x.to_le_bytes());
    v
}

fn num(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

fn key(shard: usize, k: u64) -> u64 {
    (shard as u64) << 32 | k
}

/// Single-driver chaos: one worker performs random writes while random
/// machines crash and recover; every committed write must be readable
/// afterwards with exactly the committed value, in crash order.
#[test]
fn crashes_never_lose_committed_writes() {
    for seed in 0..4u64 {
        let opts = EngineOpts::builder()
            .replicas(3)
            .region_size(4 << 20)
            .build();
        let c = DrtmCluster::new(NODES, &[TableSpec::hash(T, 4096, 16)], opts);
        let mut model = std::collections::HashMap::new();
        for shard in 0..NODES {
            for k in 0..KEYS {
                c.seed_record(shard, T, key(shard, k), &val(1));
                model.insert((shard, k), 1u64);
            }
        }

        // The driver always runs on machine 0; machines 1..N-1 may die.
        // (At most one crash per run keeps >= replicas-1 backups alive.)
        let mut w = c.worker(0, seed + 100);
        let mut rng = SplitMix64::new(seed);
        let mut crashed = false;
        for step in 0..120u64 {
            if !crashed && step == 40 + seed * 7 {
                let victim = 1 + (seed as usize % (NODES - 1));
                c.crash(victim);
                let report = recover_node(&c, victim);
                assert!(report.new_home.is_some());
                crashed = true;
                continue;
            }
            let shard = rng.below(NODES as u64) as usize;
            let k = rng.below(KEYS);
            let r = w.run(|t| {
                let v = num(&t.read(shard, T, key(shard, k))?);
                t.write(shard, T, key(shard, k), val(v + step))
            });
            if r.is_ok() {
                *model.get_mut(&(shard, k)).unwrap() += step;
            }
        }

        // Audit every key against the model.
        let mut auditor = c.worker(0, 999);
        for (&(shard, k), &want) in &model {
            let got = auditor
                .run_ro(|t| t.read(shard, T, key(shard, k)))
                .unwrap_or_else(|e| panic!("seed {seed}: {shard}/{k} unreadable: {e:?}"));
            assert_eq!(num(&got), want, "seed {seed}: {shard}/{k}");
        }
    }
}

/// Concurrent chaos: workers on every machine hammer zero-sum transfers
/// while a machine dies mid-run; the money supply must be conserved and
/// every surviving worker must make progress after recovery.
#[test]
fn concurrent_crash_conserves_and_progresses() {
    let opts = EngineOpts::builder()
        .replicas(3)
        .region_size(4 << 20)
        .build();
    let c = DrtmCluster::new(NODES, &[TableSpec::hash(T, 4096, 16)], opts);
    for shard in 0..NODES {
        for k in 0..KEYS {
            c.seed_record(shard, T, key(shard, k), &val(100));
        }
    }

    let barrier = Arc::new(std::sync::Barrier::new(NODES)); // Workers on survivors.
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let post_recovery_commits = Arc::new(drtm::base::Counter::new());
    let recovered = Arc::new(std::sync::atomic::AtomicBool::new(false));

    let mut handles = Vec::new();
    for node in [0usize, 1, 2] {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        let barrier = Arc::clone(&barrier);
        let post = Arc::clone(&post_recovery_commits);
        let recovered = Arc::clone(&recovered);
        handles.push(std::thread::spawn(move || {
            let mut w = c.worker(node, node as u64 + 50);
            let mut rng = SplitMix64::new(node as u64 * 11 + 1);
            barrier.wait();
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                let (s1, k1) = (rng.below(NODES as u64) as usize, rng.below(KEYS));
                let (s2, k2) = (rng.below(NODES as u64) as usize, rng.below(KEYS));
                if (s1, k1) == (s2, k2) {
                    continue;
                }
                let r = w.run(|t| {
                    let a = num(&t.read(s1, T, key(s1, k1))?);
                    let b = num(&t.read(s2, T, key(s2, k2))?);
                    if a < 5 {
                        return Err(TxnError::UserAbort);
                    }
                    t.write(s1, T, key(s1, k1), val(a - 5))?;
                    t.write(s2, T, key(s2, k2), val(b + 5))
                });
                if r.is_ok() && recovered.load(std::sync::atomic::Ordering::Relaxed) {
                    post.inc();
                }
            }
        }));
    }

    // Crash machine 3 mid-run (no worker of ours runs there).
    let crash_driver = {
        let c = Arc::clone(&c);
        let barrier = Arc::clone(&barrier);
        let recovered = Arc::clone(&recovered);
        std::thread::spawn(move || {
            barrier.wait();
            std::thread::sleep(std::time::Duration::from_millis(25));
            c.crash(3);
            let report = recover_node(&c, 3);
            assert!(report.new_home.is_some());
            recovered.store(true, std::sync::atomic::Ordering::Relaxed);
        })
    };

    std::thread::sleep(std::time::Duration::from_millis(120));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    for h in handles {
        h.join().unwrap();
    }
    crash_driver.join().unwrap();

    assert!(
        post_recovery_commits.get() > 0,
        "workers must keep committing after recovery"
    );
    let mut auditor = c.worker(0, 999);
    let mut total = 0u64;
    for shard in 0..NODES {
        for k in 0..KEYS {
            total += num(&auditor.run_ro(|t| t.read(shard, T, key(shard, k))).unwrap());
        }
    }
    assert_eq!(
        total,
        (NODES as u64) * KEYS * 100,
        "money must be conserved"
    );
}
