//! End-to-end failure recovery: durability of committed transactions,
//! invisibility of unreplicated ones, recovery under load.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use drtm::core::cluster::{DrtmCluster, EngineOpts};
use drtm::core::recovery::recover_node;
use drtm::core::txn::TxnError;
use drtm::store::TableSpec;

const T: u32 = 0;

fn val(x: u64) -> Vec<u8> {
    let mut v = vec![0u8; 16];
    v[..8].copy_from_slice(&x.to_le_bytes());
    v
}

fn num(v: &[u8]) -> u64 {
    u64::from_le_bytes(v[..8].try_into().unwrap())
}

fn key(shard: usize, k: u64) -> u64 {
    (shard as u64) << 32 | k
}

fn build(nodes: usize, keys: u64) -> Arc<DrtmCluster> {
    let opts = EngineOpts::builder()
        .replicas(3)
        .region_size(4 << 20)
        .build();
    let c = DrtmCluster::new(nodes, &[TableSpec::hash(T, 8192, 16)], opts);
    for shard in 0..nodes {
        for k in 0..keys {
            c.seed_record(shard, T, key(shard, k), &val(500));
        }
    }
    c
}

/// Every transaction reported committed before the crash is readable
/// after recovery, including transactions committed *remotely* against
/// the dead machine.
#[test]
fn committed_transactions_survive_crash() {
    let c = build(4, 8);
    // Commit from the victim itself and from a peer.
    let mut wv = c.worker(2, 1);
    wv.run(|t| t.write(2, T, key(2, 0), val(111))).unwrap();
    let mut wp = c.worker(0, 2);
    wp.run(|t| t.write(2, T, key(2, 1), val(222))).unwrap();

    c.crash(2);
    let report = recover_node(&c, 2);
    assert_eq!(report.new_home, Some(3));
    assert_eq!(report.records_recovered, 8);

    let mut w = c.worker(1, 3);
    assert_eq!(num(&w.run_ro(|t| t.read(2, T, key(2, 0))).unwrap()), 111);
    assert_eq!(num(&w.run_ro(|t| t.read(2, T, key(2, 1))).unwrap()), 222);
    // The recovered shard accepts writes again.
    w.run(|t| t.write(2, T, key(2, 0), val(112))).unwrap();
}

/// Recovery under continuous load from surviving machines: the cluster
/// keeps committing, and the global invariant holds afterwards.
#[test]
fn recovery_under_load_conserves_invariants() {
    let c = build(4, 8);
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    for node in [0usize, 1, 3] {
        let c = Arc::clone(&c);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut w = c.worker(node, node as u64 + 11);
            let mut rng = drtm::base::SplitMix64::new(node as u64);
            let mut committed = 0;
            while !stop.load(Ordering::Relaxed) {
                let (s1, k1) = (rng.below(4) as usize, rng.below(8));
                let (s2, k2) = (rng.below(4) as usize, rng.below(8));
                if (s1, k1) == (s2, k2) {
                    continue;
                }
                let r = w.run(|t| {
                    let a = num(&t.read(s1, T, key(s1, k1))?);
                    let b = num(&t.read(s2, T, key(s2, k2))?);
                    if a < 5 {
                        return Err(TxnError::UserAbort);
                    }
                    t.write(s1, T, key(s1, k1), val(a - 5))?;
                    t.write(s2, T, key(s2, k2), val(b + 5))
                });
                if r.is_ok() {
                    committed += 1;
                }
            }
            committed
        }));
    }

    std::thread::sleep(std::time::Duration::from_millis(30));
    c.crash(2);
    let report = recover_node(&c, 2);
    assert!(report.new_home.is_some());
    std::thread::sleep(std::time::Duration::from_millis(30));
    stop.store(true, Ordering::Relaxed);
    let committed: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(committed > 0, "survivors must keep committing");

    let mut w = c.worker(0, 99);
    let mut total = 0;
    for shard in 0..4usize {
        for k in 0..8 {
            total += num(&w.run_ro(|t| t.read(shard, T, key(shard, k))).unwrap());
        }
    }
    assert_eq!(
        total,
        4 * 8 * 500,
        "zero-sum transfers must conserve the total"
    );
}

/// The §5.1 guarantee end to end: an update that reached the primary
/// (odd sequence number) but not the logs is rolled back by recovery —
/// and no transaction could have committed against it in the meantime.
#[test]
fn unreplicated_update_rolls_back_and_gated_readers_abort() {
    let c = build(3, 4);
    // Forge the crash window: committed-in-HTM but unlogged (odd seq).
    let off = c.stores[1].get_loc(T, key(1, 2)).unwrap() as usize;
    c.stores[1].record(T, off).write_locked(&val(9999), 3);

    // A reader sees the optimistic value but cannot commit against it.
    let mut w = c.worker(0, 1);
    let r = w.run_once_for_test(|t| {
        let v = num(&t.read_remote(1, T, key(1, 2))?);
        assert_eq!(v, 9999, "execution-phase reads are optimistic");
        t.write_remote(1, T, key(1, 2), val(v + 1))
    });
    assert!(matches!(r, Err(TxnError::Aborted(_))));

    c.crash(1);
    recover_node(&c, 1);
    let v = w.run_ro(|t| t.read(1, T, key(1, 2))).unwrap();
    assert_eq!(num(&v), 500, "the unlogged update must vanish");
}

/// Idempotence as a property: however many detectors race to recover
/// the same death — sequentially or concurrently — exactly one pass
/// does the work, the configuration epoch moves exactly once, and the
/// recovered data is identical to a single-pass recovery.
#[test]
fn recover_node_is_idempotent_under_racing_detectors() {
    for detectors in [2usize, 4, 8] {
        let c = build(4, 8);
        let mut w = c.worker(0, 5);
        w.run(|t| t.write(2, T, key(2, 3), val(4242))).unwrap();

        let epoch_before = c.config.epoch();
        c.crash(2);
        let reports: Vec<_> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..detectors)
                .map(|_| s.spawn(|| recover_node(&c, 2)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });

        let fresh: Vec<_> = reports.iter().filter(|r| !r.repeat).collect();
        assert_eq!(fresh.len(), 1, "exactly one pass does the work");
        assert!(fresh[0].new_home.is_some());
        assert_eq!(
            c.config.epoch(),
            epoch_before + 1,
            "the epoch moves exactly once no matter how many detectors race"
        );
        for r in &reports {
            assert_eq!(r.dead, 2);
            assert_eq!(r.epoch, epoch_before + 1, "repeats report the same epoch");
            if r.repeat {
                assert_eq!(r.records_recovered, 0, "repeats re-apply nothing");
                assert_eq!(r.log_entries_replayed, 0);
            }
        }
        // A later (sequential) repeat is also a no-op.
        let again = recover_node(&c, 2);
        assert!(again.repeat);
        assert_eq!(c.config.epoch(), epoch_before + 1);

        let mut w = c.worker(1, 7);
        assert_eq!(num(&w.run_ro(|t| t.read(2, T, key(2, 3))).unwrap()), 4242);
    }
}

/// After recovery the replica count is restored: a second failure of
/// the new home is also survivable.
#[test]
fn double_failure_with_rereplication() {
    let c = build(5, 4);
    let mut w = c.worker(0, 1);
    w.run(|t| t.write(2, T, key(2, 0), val(777))).unwrap();

    c.crash(2);
    let r1 = recover_node(&c, 2);
    let new_home = r1.new_home.unwrap();

    // Kill the machine that just took over.
    c.crash(new_home);
    let r2 = recover_node(&c, new_home);
    assert!(r2.new_home.is_some());

    let mut w = c.worker(0, 2);
    assert_eq!(num(&w.run_ro(|t| t.read(2, T, key(2, 0))).unwrap()), 777);
}
